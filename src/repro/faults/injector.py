"""Seeded fault injection over a running cluster simulation.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into discrete-event processes:

* a crash/repair loop per faulty node — exponential up/down times from the
  node's own seeded stream; a crash goes through
  :meth:`~repro.scheduler.cluster.ClusterScheduler.fail_node` (kill + flow
  abort), then, once the interrupted tasks have unwound, drops the node's
  page cache;
* a straggler window per slow node — CPU speed and channel bandwidths are
  multiplied down, then restored to the exact recorded originals;
* a join/drain/leave process per burstable node (drain-before-leave).

All processes are side processes: the simulation still terminates on
workflow completion (``env.run(until=completion)``), the injector never
keeps it alive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.faults.plan import ALL_NODES, FaultPlan, NodeFaultSpec, \
    StragglerSpec, ElasticNodeSpec
from repro.rng import DeterministicRNG, derive_seed


class FaultInjector:
    """Drives the faults of one plan against one cluster scheduler."""

    def __init__(self, env: Environment, scheduler, plan: FaultPlan):
        self.env = env
        self.scheduler = scheduler
        self.plan = plan
        #: The injector's simulation processes (for introspection/tests).
        self.processes: List[object] = []
        #: Original rates of currently slowed nodes, for exact restore.
        self._slowed: Dict[str, dict] = {}
        #: Live per-stream generators, keyed by stream (``"crash:node3"``).
        #: Kept on the injector (not just in process closures) so snapshot
        #: capture can record each stream's seed and position.
        self.rngs: Dict[str, DeterministicRNG] = {}

    # ----------------------------------------------------------------- setup
    def start(self) -> List[object]:
        """Create the plan's processes; apply initial elastic state.

        Must be called before the environment runs (the not-yet-joined
        burstable nodes are put in the draining state synchronously, so
        the scheduler's first dispatch pass already excludes them).
        A zero plan starts nothing and leaves the scheduler untouched.
        """
        if self.plan.is_zero:
            return self.processes
        scheduler = self.scheduler
        scheduler.fault_mode = True
        names = [node.name for node in scheduler.nodes]

        for spec in self.plan.node_faults:
            for name in self._expand(spec.node, names):
                self.processes.append(self.env.process(
                    self._crash_loop(spec, name, self._stream(f"crash:{name}")),
                    name=f"fault:crash:{name}",
                ))
        for spec in self.plan.stragglers:
            for name in self._expand(spec.node, names):
                self.processes.append(self.env.process(
                    self._straggler(spec, name,
                                    self._stream(f"straggler:{name}")),
                    name=f"fault:straggler:{name}",
                ))
        for spec in self.plan.elastic:
            if spec.node not in names:
                raise ConfigurationError(
                    f"elastic spec names unknown node {spec.node!r}; "
                    f"scheduler nodes: {names}"
                )
            if spec.join_time > 0:
                # Held out of the cluster until it joins; set silently
                # (before any event runs) rather than via drain_node so
                # no spurious drain instant is recorded at t=0.
                scheduler.node(spec.node).draining = True
            self.processes.append(self.env.process(
                self._elastic(spec, spec.node),
                name=f"fault:elastic:{spec.node}",
            ))
        return self.processes

    def _stream(self, key: str) -> DeterministicRNG:
        """Create (and register) the seeded generator of one fault stream."""
        rng = DeterministicRNG(derive_seed(self.plan.seed, key))
        self.rngs[key] = rng
        return rng

    @staticmethod
    def _expand(pattern: str, names: List[str]) -> List[str]:
        if pattern == ALL_NODES:
            return list(names)
        if pattern not in names:
            raise ConfigurationError(
                f"fault spec names unknown node {pattern!r}; "
                f"scheduler nodes: {names}"
            )
        return [pattern]

    # -------------------------------------------------------------- processes
    def _crash_loop(self, spec: NodeFaultSpec, name: str,
                    rng: DeterministicRNG):
        """Crash/repair lifecycle of one node; simulation process.

        Leave wins every race with an elastic departure: once the node
        has left the cluster the rest of its crash/repair stream is
        discarded — in particular a repair pending for a node that
        crashed while draining never restores it.
        """
        if spec.first_failure_after > 0:
            yield self.env.timeout(spec.first_failure_after)
        failures = 0
        while spec.max_failures is None or failures < spec.max_failures:
            yield self.env.timeout(rng.exponential(1.0 / spec.mtbf))
            node = self.scheduler.node(name)
            if node.left:
                return
            if not node.up:
                continue
            self.scheduler.fail_node(name)
            failures += 1
            # Let the victims' interrupts unwind (their rollbacks release
            # anonymous memory and delete partial outputs) before dropping
            # the page cache, so the memory accounting is settled when the
            # cache is invalidated.
            yield self.env.timeout(0)
            manager = node.host.memory_manager
            if manager is not None:
                manager.invalidate_all()
            if spec.mttr > 0:
                yield self.env.timeout(rng.exponential(1.0 / spec.mttr))
            else:
                yield self.env.timeout(0)
            if node.left:
                return
            self.scheduler.restore_node(name)

    def _straggler(self, spec: StragglerSpec, name: str,
                   rng: DeterministicRNG):
        """Slowdown window(s) of one node; simulation process."""
        delay = spec.start
        if spec.max_delay > 0:
            delay += rng.uniform(0.0, spec.max_delay)
        if delay > 0:
            yield self.env.timeout(delay)
        while True:
            self._apply_slowdown(name, spec)
            if spec.duration is None:
                return
            yield self.env.timeout(spec.duration)
            self._restore_rates(name)
            if spec.period is None:
                return
            yield self.env.timeout(spec.period - spec.duration)

    def _elastic(self, spec: ElasticNodeSpec, name: str):
        """Join/drain/leave lifecycle of one burstable node."""
        if spec.join_time > 0:
            yield self.env.timeout(spec.join_time)
            self.scheduler.undrain_node(name)
        if spec.leave_time is None:
            return
        yield self.env.timeout(spec.leave_time - spec.join_time)
        self.scheduler.drain_node(name)
        node = self.scheduler.node(name)
        while node.running:
            yield self.env.timeout(spec.drain_poll)
        self.scheduler.leave_node(name)

    # ------------------------------------------------------------- slowdowns
    def _apply_slowdown(self, name: str, spec: StragglerSpec) -> None:
        if name in self._slowed:
            return  # another straggler window already slows this node
        host = self.scheduler.node(name).host
        originals = {"cpu": host.cpu.speed, "channels": []}
        if spec.compute_factor < 1.0:
            host.cpu.set_speed(host.cpu.speed * spec.compute_factor)
        if spec.io_factor < 1.0:
            for channel in host.channels():
                originals["channels"].append((channel, channel.bandwidth))
                channel.set_bandwidth(channel.bandwidth * spec.io_factor)
        self._slowed[name] = originals
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"slow:{name}", "fault", "scheduler", self.env.now,
                {"node": name, "compute_factor": spec.compute_factor,
                 "io_factor": spec.io_factor},
            )
            observer.registry.counter("faults.straggler_windows").inc()

    def _restore_rates(self, name: str) -> None:
        originals = self._slowed.pop(name, None)
        if originals is None:
            return
        host = self.scheduler.node(name).host
        host.cpu.set_speed(originals["cpu"])
        for channel, bandwidth in originals["channels"]:
            channel.set_bandwidth(bandwidth)
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"recover:{name}", "fault", "scheduler", self.env.now,
                {"node": name},
            )
