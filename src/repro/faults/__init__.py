"""Seeded fault injection: node crashes, stragglers, elastic capacity.

Public surface:

* :class:`~repro.faults.plan.FaultPlan` and its spec dataclasses — a
  frozen, picklable description of what goes wrong;
* :class:`~repro.faults.injector.FaultInjector` — turns a plan into
  seeded discrete-event processes against a cluster scheduler.

Pass a plan to :class:`repro.Simulation` via ``fault_plan=`` — the zero
plan (``FaultPlan()``) injects nothing and leaves the simulation
byte-identical to a fault-free run.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ALL_NODES,
    ElasticNodeSpec,
    FaultPlan,
    NodeFaultSpec,
    StragglerSpec,
)

__all__ = [
    "ALL_NODES",
    "ElasticNodeSpec",
    "FaultInjector",
    "FaultPlan",
    "NodeFaultSpec",
    "StragglerSpec",
]
