"""Sim-time span tracing.

A :class:`Span` is an interval of *simulated* time with a name, a category
(``"job"``, ``"operation"``, ``"io"``, ``"flow"``, ``"process"``...), a
track (the row it renders on in a trace viewer — a node, a device channel,
the scheduler) and free-form attributes.  The :class:`Observer` is the hub
instrumented code talks to:

* :meth:`Observer.begin` / :meth:`Observer.end` — paired spans for
  entities whose end is not known at the start (jobs, DES processes);
* :meth:`Observer.complete` — one-shot spans whose start and end are both
  known when the instrumentation point runs (file operations, flows);
* :meth:`Observer.instant` — point events (preemptions);
* :meth:`Observer.counter_sample` — a sim-time series sample rendered as a
  counter track (event-queue depth, memory profile).

Completed spans live in a bounded ring: a trace that outgrows the ring
drops its *oldest* spans (``dropped_spans`` counts them) instead of growing
without bound, so telemetry can stay on for a million-event replay.

Two invariants keep telemetry safe to enable:

* **observe, never schedule** — nothing here creates events, processes or
  timeouts; recording a span cannot perturb a simulation;
* **zero-cost when off** — instrumented code guards every call with a
  single ``observer is not None`` check, so the disabled fast path costs
  one attribute load and one branch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "Observer", "DEFAULT_MAX_SPANS"]

#: Default ring capacity (completed spans kept for export).
DEFAULT_MAX_SPANS = 200_000

#: Default capacity of the counter-sample ring.
DEFAULT_MAX_SAMPLES = 100_000


class Span:
    """One traced interval (or instant) of simulated time."""

    __slots__ = ("name", "category", "track", "start", "end", "attrs", "phase",
                 "_open_key")

    def __init__(self, name: str, category: str, track: str, start: float,
                 end: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 phase: str = "X"):
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end = end
        self.attrs = attrs
        #: Chrome-trace phase: ``"X"`` interval, ``"i"`` instant.
        self.phase = phase
        #: Key into the observer's open-span table while the span is open.
        self._open_key: Optional[int] = None

    @property
    def duration(self) -> Optional[float]:
        """Simulated duration; ``None`` while the span is still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL/CSV exporters."""
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "phase": self.phase,
            "attrs": self.attrs or {},
        }

    def __repr__(self) -> str:
        end = f"{self.end:.6g}" if self.end is not None else "open"
        return (
            f"<Span {self.category}:{self.name!r} track={self.track!r} "
            f"[{self.start:.6g}, {end}]>"
        )


class Observer:
    """Telemetry hub: span ring, counter samples, metrics registry.

    Parameters
    ----------
    max_spans:
        Capacity of the completed-span ring (oldest dropped first).
    max_samples:
        Capacity of the counter-sample ring.
    des_sample_interval:
        Period (simulated seconds) of the DES introspection sampler the
        simulator attaches; ``None`` disables periodic sampling (explicit
        :meth:`counter_sample` calls still work).
    """

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS,
                 max_samples: int = DEFAULT_MAX_SAMPLES,
                 des_sample_interval: Optional[float] = 1.0):
        if max_spans < 1 or max_samples < 1:
            raise ValueError("ring capacities must be >= 1")
        self.registry = MetricsRegistry()
        self.des_sample_interval = des_sample_interval
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._samples: Deque[Tuple[str, str, float, Dict[str, float]]] = deque(
            maxlen=max_samples
        )
        #: Completed spans ever emitted (emitted - len(ring) = dropped).
        self.spans_emitted = 0
        self.samples_emitted = 0
        #: Spans begun and not yet ended, in begin order.
        self._open: Dict[int, Span] = {}
        self._next_open = 0
        #: Open spans of live DES processes, keyed by ``id(process)``.
        self._process_spans: Dict[int, Span] = {}
        # ---- DES loop counters (maintained by Environment's observed loop)
        #: Processed-event counts keyed by event class name.
        self.des_event_counts: Dict[str, int] = {}
        #: Tombstoned (cancelled) entries skipped by the event loop.
        self.des_tombstones = 0
        #: Largest simulated time any record carried (used to close
        #: still-open spans at export time).
        self.last_time = 0.0

    # ----------------------------------------------------------------- spans
    def begin(self, name: str, category: str, track: str, start: float,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; pair it with :meth:`end` to complete it."""
        span = Span(name, category, track, start, None, attrs)
        key = self._next_open
        self._next_open = key + 1
        self._open[key] = span
        span._open_key = key
        if start > self.last_time:
            self.last_time = start
        return span

    def end(self, span: Span, end: float,
            attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Close an open span at simulated time ``end``."""
        span.end = end
        if attrs:
            span.attrs = {**(span.attrs or {}), **attrs}
        key = span._open_key
        if key is not None:
            self._open.pop(key, None)
            span._open_key = None
        self._record(span)
        return span

    def complete(self, name: str, category: str, track: str, start: float,
                 end: float, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a span whose start and end are both already known.

        This is the hottest telemetry entry point (every flow and file
        operation lands here), so :meth:`_record` is inlined.
        """
        self._spans.append(Span(name, category, track, start, end, attrs))
        self.spans_emitted += 1
        if end > self.last_time:
            self.last_time = end

    def instant(self, name: str, category: str, track: str, time: float,
                attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event."""
        self._record(Span(name, category, track, time, time, attrs, phase="i"))

    def _record(self, span: Span) -> None:
        self._spans.append(span)
        self.spans_emitted += 1
        end = span.end
        if end is not None and end > self.last_time:
            self.last_time = end

    # --------------------------------------------------------------- samples
    def counter_sample(self, name: str, track: str, time: float,
                       values: Dict[str, float]) -> None:
        """Record one sample of a sim-time counter series."""
        self._samples.append((name, track, time, values))
        self.samples_emitted += 1
        if time > self.last_time:
            self.last_time = time

    # ----------------------------------------------------- process lifecycle
    # Called by repro.des.process behind the ``env.observer`` nullable hook.
    def process_started(self, process) -> None:
        """Open a lifetime span for a starting DES process."""
        name = process.name or "process"
        cls = name.split(":", 1)[0]
        self.registry.counter("des.process_started", cls=cls).inc()
        self._process_spans[id(process)] = self.begin(
            name, "process", "des", process.env.now
        )

    def process_ended(self, process, ok: bool) -> None:
        """Close the lifetime span of a terminating DES process."""
        name = process.name or "process"
        cls = name.split(":", 1)[0]
        self.registry.counter("des.process_ended", cls=cls).inc()
        span = self._process_spans.pop(id(process), None)
        if span is not None:
            self.end(span, process.env.now,
                     attrs=None if ok else {"failed": True})

    # ---------------------------------------------------------------- export
    @property
    def spans(self) -> List[Span]:
        """Completed spans surviving in the ring, oldest first."""
        return list(self._spans)

    @property
    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended, in begin order."""
        return [self._open[key] for key in sorted(self._open)]

    @property
    def counter_samples(self) -> List[Tuple[str, str, float, Dict[str, float]]]:
        """Counter-series samples surviving in the ring, oldest first."""
        return list(self._samples)

    @property
    def dropped_spans(self) -> int:
        """Completed spans lost to ring truncation."""
        return self.spans_emitted - len(self._spans)

    @property
    def dropped_samples(self) -> int:
        """Counter samples lost to ring truncation."""
        return self.samples_emitted - len(self._samples)

    @property
    def des_events_processed(self) -> int:
        """Events executed by the observed DES loop."""
        return sum(self.des_event_counts.values())

    @property
    def des_tombstone_ratio(self) -> float:
        """Fraction of queue pops that were cancelled (tombstoned) entries."""
        popped = self.des_events_processed + self.des_tombstones
        if popped <= 0:
            return 0.0
        return self.des_tombstones / popped

    def __repr__(self) -> str:
        return (
            f"<Observer spans={len(self._spans)} open={len(self._open)} "
            f"samples={len(self._samples)} dropped={self.dropped_spans}>"
        )
