"""Trace exporters: Chrome trace-event / Perfetto JSON, JSONL and CSV.

The Chrome trace-event format (the JSON flavour Perfetto and
``chrome://tracing`` open directly) renders spans on per-track timeline
rows and counter samples as stacked counter tracks.  Timestamps are in
microseconds; one simulated second is exported as one millisecond of trace
time (``displayTimeUnit: "ms"``), purely a display choice.

Exports are deterministic: events appear in emission order, JSON is dumped
with sorted keys and fixed separators, and nothing wall-clock-dependent is
included — the same simulation produces byte-identical trace files on every
run and platform, which is what the golden-file test pins.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from repro.obs.spans import Observer, Span

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_spans_csv",
]

#: Exported microseconds per simulated second.
_US = 1e6

#: The single synthetic "process" all tracks live under.
_PID = 1


def _track_ids(observer: Observer) -> Dict[str, int]:
    """Assign stable thread ids to tracks in first-appearance order."""
    tracks: Dict[str, int] = {}
    for span in list(observer.spans) + observer.open_spans:
        if span.track not in tracks:
            tracks[span.track] = len(tracks) + 1
    for _name, track, _time, _values in observer.counter_samples:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
    return tracks


def _span_event(span: Span, tid: int, close_at: float) -> Dict[str, object]:
    event: Dict[str, object] = {
        "name": span.name,
        "cat": span.category,
        "ph": span.phase,
        "ts": span.start * _US,
        "pid": _PID,
        "tid": tid,
    }
    if span.phase == "i":
        event["s"] = "t"  # instant scoped to its thread/track
    else:
        end = span.end if span.end is not None else close_at
        event["dur"] = max(0.0, end - span.start) * _US
        if span.end is None:
            event["args"] = {**(span.attrs or {}), "open": True}
            return event
    if span.attrs:
        event["args"] = dict(span.attrs)
    return event


def chrome_trace_events(observer: Observer) -> List[Dict[str, object]]:
    """The ``traceEvents`` list: metadata, spans, then counter samples."""
    tracks = _track_ids(observer)
    close_at = observer.last_time
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "simulation"},
        }
    ]
    for track, tid in tracks.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in observer.spans:
        events.append(_span_event(span, tracks[span.track], close_at))
    # Spans still open at export time are closed at the last observed
    # instant and flagged, so the trace stays valid (viewers reject a
    # truncated "B" without its "E").
    for span in observer.open_spans:
        events.append(_span_event(span, tracks[span.track], close_at))
    for name, track, time, values in observer.counter_samples:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": time * _US,
                "pid": _PID,
                "tid": tracks[track],
                "args": dict(values),
            }
        )
    return events


def to_chrome_trace(observer: Observer) -> Dict[str, object]:
    """The full Chrome trace-event JSON document as a dict."""
    return {
        "traceEvents": chrome_trace_events(observer),
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_spans": observer.dropped_spans,
            "dropped_samples": observer.dropped_samples,
            "clock": "simulated seconds exported as microseconds",
        },
    }


def dumps_chrome_trace(observer: Observer) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(to_chrome_trace(observer), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(observer: Observer, path) -> None:
    """Write the Perfetto-openable trace JSON to ``path``."""
    with open(path, "w") as handle:
        handle.write(dumps_chrome_trace(observer))


def write_spans_jsonl(observer: Observer, path,
                      include_open: bool = True) -> int:
    """Write one JSON object per span; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        spans = list(observer.spans)
        if include_open:
            spans.extend(observer.open_spans)
        for span in spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


_CSV_FIELDS = ("category", "name", "track", "start", "end", "duration",
               "phase", "attrs")


def write_spans_csv(observer: Observer, path,
                    include_open: bool = True) -> int:
    """Write spans as CSV (attrs JSON-encoded); returns the number written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        spans = list(observer.spans)
        if include_open:
            spans.extend(observer.open_spans)
        for span in spans:
            record = span.as_dict()
            record["attrs"] = json.dumps(record["attrs"], sort_keys=True)
            writer.writerow([record[field] for field in _CSV_FIELDS])
            count += 1
    return count
