"""DES-core introspection.

The observed event loop of :class:`~repro.des.environment.Environment`
maintains raw counters on the attached :class:`~repro.obs.spans.Observer`
(events processed per event class, tombstones skipped).  This module turns
them into time series: :class:`DESSampler` is a lightweight simulation
process that wakes every ``interval`` simulated seconds and records

* the event-queue depth (heap size, including tombstoned entries),
* cumulative events processed / tombstones skipped and the tombstone ratio,
* a sim-time-weighted histogram of the queue depth,
* a wall-clock events/sec heartbeat (registry only — wall-clock numbers
  are machine-dependent and deliberately stay out of the exported trace,
  which must be deterministic).

The sampler only *reads* simulator state; its own timeout events interleave
with the simulation's but never mutate anything, so enabling it cannot
change simulated results (the parity suite pins this).
"""

from __future__ import annotations

import time as _time
from typing import Optional

from repro.des.environment import Environment
from repro.obs.spans import Observer

__all__ = ["DESSampler", "sample_des"]


def sample_des(env: Environment, observer: Observer) -> None:
    """Record one DES introspection sample (deterministic part only)."""
    now = env.now
    depth = len(env._queue)
    processed = observer.des_events_processed
    tombstones = observer.des_tombstones
    observer.counter_sample("des.queue_depth", "des", now, {"depth": depth})
    observer.counter_sample(
        "des.events", "des", now,
        {"processed": processed, "tombstoned": tombstones},
    )
    registry = observer.registry
    registry.gauge("des.queue_depth", mode="max").set(depth)
    registry.gauge("des.tombstone_ratio").set(observer.des_tombstone_ratio)


class DESSampler:
    """Periodic DES introspection process.

    Start with :meth:`start` once the environment is about to run; call
    :meth:`stop` after the simulation completes so the pending timeout is
    tombstoned and later ``env.run()`` calls are not kept alive by the
    sampling loop (mirrors ``MemoryManager.stop``).
    """

    def __init__(self, env: Environment, observer: Observer,
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.env = env
        self.observer = observer
        self.interval = float(interval)
        self._running = False
        self._timeout = None
        self._last_wall: Optional[float] = None
        self._last_events = 0

    def start(self) -> None:
        """Spawn the sampling process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name="obs:des-sampler")

    def stop(self) -> None:
        """Stop sampling and cancel the pending wake-up."""
        self._running = False
        if self._timeout is not None:
            self.env.cancel(self._timeout)
            self._timeout = None

    def _loop(self):
        while self._running:
            self.sample()
            self._timeout = self.env.timeout(self.interval)
            yield self._timeout
        self._timeout = None

    def sample(self) -> None:
        """Record one sample (deterministic series + wall-clock heartbeat)."""
        observer = self.observer
        sample_des(self.env, observer)
        # Sim-time-weighted depth distribution: each sample stands for one
        # interval of simulated time at the observed depth.
        observer.registry.histogram(
            "des.queue_depth_weighted",
            bounds=(0, 10, 100, 1000, 10000, 100000),
        ).observe(len(self.env._queue), weight=self.interval)
        # Wall-clock heartbeat: events processed since the previous sample
        # over wall seconds elapsed.  Registry only — never exported into
        # the (deterministic) trace.
        wall = _time.perf_counter()
        events = observer.des_events_processed
        if self._last_wall is not None and wall > self._last_wall:
            rate = (events - self._last_events) / (wall - self._last_wall)
            observer.registry.gauge("des.events_per_wall_second").set(rate)
        self._last_wall = wall
        self._last_events = events
