"""Metrics registry: counters, gauges and sim-time-weighted histograms.

The registry is the single sink every stats object in the simulator exports
through (:func:`publish` adapts any ``as_dict``-style object).  It is built
for the sharded-simulation future of the roadmap: two registries recorded
by independent shards (or sweep points) combine with :meth:`MetricsRegistry.merge`,
and the merge is associative by construction — counters add, gauges combine
according to their declared mode, histograms add bucket-by-bucket — so a
fan-in tree of any shape produces the same totals.

All metrics support labels (``registry.counter("jobs", node="node3")``);
each distinct label set is an independent child series of the same family.

Nothing in this module touches simulated time: recording a metric is a pure
observation and can never change what a simulation computes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "publish",
    "DEFAULT_BOUNDS",
]

#: Default histogram bucket upper bounds (seconds-ish decades; callers with
#: other units pass their own ``bounds``).  The last bucket is unbounded.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0,
)

#: Valid gauge merge modes.
GAUGE_MODES = ("last", "sum", "min", "max")


class Counter:
    """A monotonically increasing count (events, bytes, jobs...)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase (got {amount})")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def export(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value with a declared shard-merge mode.

    ``mode`` decides what the merged value of N shards means: ``"sum"``
    (e.g. queue depths add), ``"min"``/``"max"`` (extrema survive), or
    ``"last"`` (the right-hand shard wins — the mode of "latest sample"
    gauges where merge order encodes recency).
    """

    __slots__ = ("value", "mode", "updates")
    kind = "gauge"

    def __init__(self, mode: str = "last") -> None:
        if mode not in GAUGE_MODES:
            raise ValueError(f"gauge mode must be one of {GAUGE_MODES}, got {mode!r}")
        self.value = 0.0
        self.mode = mode
        #: Number of ``set`` calls (0 = never set; a never-set gauge is
        #: transparent in merges, keeping the merge associative).
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        self.updates += 1

    def merge_from(self, other: "Gauge") -> None:
        if self.mode != other.mode:
            raise ValueError(
                f"cannot merge gauges with modes {self.mode!r} and {other.mode!r}"
            )
        if other.updates == 0:
            return
        if self.updates == 0:
            self.value = other.value
        elif self.mode == "sum":
            self.value += other.value
        elif self.mode == "min":
            self.value = min(self.value, other.value)
        elif self.mode == "max":
            self.value = max(self.value, other.value)
        else:  # "last": the right-hand operand is the more recent shard.
            self.value = other.value
        self.updates += other.updates

    def export(self) -> float:
        return self.value


class Histogram:
    """A weighted histogram with fixed bucket bounds.

    ``observe(value, weight)`` adds ``weight`` to the bucket containing
    ``value``.  With ``weight`` equal to a simulated duration the histogram
    becomes *sim-time-weighted*: "how long was the queue depth in this
    band", not "how many samples landed there" — the distinction that
    matters when samples are taken at irregular event times.
    """

    __slots__ = ("bounds", "buckets", "sum", "weight", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        #: One bucket per bound plus the unbounded overflow bucket.
        self.buckets = [0.0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.weight = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Add an observation of ``value`` carrying ``weight``."""
        if weight < 0:
            raise ValueError(f"histogram weights must be >= 0 (got {weight})")
        self.buckets[bisect_right(self.bounds, value)] += weight
        self.sum += value * weight
        self.weight += weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Weighted mean of the observations (0 when empty)."""
        if self.weight <= 0:
            return 0.0
        return self.sum / self.weight

    def merge_from(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with bounds {self.bounds} and {other.bounds}"
            )
        for index, weight in enumerate(other.buckets):
            self.buckets[index] += weight
        self.sum += other.sum
        self.weight += other.weight
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def export(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "sum": self.sum,
            "weight": self.weight,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class _Family:
    """All series of one metric name (one child per distinct label set)."""

    __slots__ = ("name", "kind", "spec", "children")

    def __init__(self, name: str, kind: str, spec: object) -> None:
        self.name = name
        self.kind = kind
        #: Construction parameters shared by every child (gauge mode or
        #: histogram bounds); children of one family must agree on them.
        self.spec = spec
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def child(self, labels: Tuple[Tuple[str, str], ...]):
        metric = self.children.get(labels)
        if metric is None:
            if self.kind == "counter":
                metric = Counter()
            elif self.kind == "gauge":
                metric = Gauge(self.spec)
            else:
                metric = Histogram(self.spec)
            self.children[labels] = metric
        return metric


def _label_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Accessors create on first use, so instrumentation sites never need a
    separate declaration step::

        registry.counter("jobs_completed", node="node3").inc()
        registry.gauge("queue_depth", mode="max").set(12)
        registry.histogram("wait_time").observe(3.5, weight=1.0)
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------- accessors
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` for this label set (created on first use)."""
        return self._metric(name, "counter", None, labels)

    def gauge(self, name: str, mode: str = "last", **labels: object) -> Gauge:
        """The gauge ``name`` for this label set (created on first use)."""
        return self._metric(name, "gauge", mode, labels)

    def histogram(self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS,
                  **labels: object) -> Histogram:
        """The histogram ``name`` for this label set (created on first use)."""
        return self._metric(name, "histogram", tuple(float(b) for b in bounds),
                            labels)

    def _metric(self, name: str, kind: str, spec: object,
                labels: Mapping[str, object]):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, spec)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        elif spec is not None and family.spec != spec:
            raise ValueError(
                f"metric {name!r} was created with {family.spec!r}, "
                f"requested again with {spec!r}"
            )
        return family.child(_label_key(labels))

    # ----------------------------------------------------------------- merge
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place and return ``self``.

        The operation is associative: merging shard registries pairwise in
        any tree shape yields the same result as folding them left to
        right (floating-point addition order is fixed by the fold order,
        so byte-exact associativity additionally requires exactly
        representable increments — integers and binary fractions qualify).
        """
        for name, family in other._families.items():
            mine = self._families.get(name)
            if mine is None:
                mine = self._families[name] = _Family(name, family.kind,
                                                      family.spec)
            elif mine.kind != family.kind:
                raise ValueError(
                    f"cannot merge metric {name!r}: {mine.kind} vs {family.kind}"
                )
            for labels, metric in family.children.items():
                mine.child(labels).merge_from(metric)
        return self

    @staticmethod
    def merged(registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Merge several shard registries into a fresh one."""
        result = MetricsRegistry()
        for registry in registries:
            result.merge(registry)
        return result

    # ---------------------------------------------------------------- export
    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """``{name: {label_string: value}}``; scalars for counters/gauges,
        a bucket dict for histograms.  Label strings are ``"k=v,k2=v2"``
        (empty for the unlabelled series), sorted for determinism.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: Dict[str, object] = {}
            for labels in sorted(family.children):
                key = ",".join(f"{k}={v}" for k, v in labels)
                series[key] = family.children[labels].export()
            out[name] = series
        return out

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    def __repr__(self) -> str:
        return f"<MetricsRegistry families={len(self._families)} series={len(self)}>"


def publish(registry: MetricsRegistry, prefix: str, stats: object,
            **labels: object) -> None:
    """Export any stats object into ``registry`` as ``prefix.*`` gauges.

    ``stats`` is either a mapping or an object with an ``as_dict`` method
    (the uniform surface of :class:`~repro.pagecache.stats.CacheStatistics`,
    :class:`~repro.pagecache.stats.ExtentOccupancy`,
    :class:`~repro.scheduler.metrics.SchedulerMetrics`, memory snapshots...).
    Non-numeric values are skipped: the registry holds numbers.
    """
    mapping = stats.as_dict() if hasattr(stats, "as_dict") else stats
    for key, value in mapping.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.gauge(f"{prefix}.{key}", **labels).set(float(value))
