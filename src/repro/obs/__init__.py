"""Unified observability for the simulator (``repro.obs``).

Three pieces, designed to be attached or left off with zero cost:

* :mod:`repro.obs.registry` — a metrics registry (counters, gauges,
  sim-time-weighted histograms, labelled series) with an associative
  ``merge`` for sharded / sweep fan-in;
* :mod:`repro.obs.spans` — the :class:`Observer` hub collecting sim-time
  spans (jobs, file operations, flow transfers, DES process lifetimes)
  into a bounded ring, plus counter-series samples;
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON, JSONL and
  CSV exporters; :mod:`repro.obs.introspect` — DES event-loop sampling.

Enable per simulation with ``Simulation(observe=True)`` (or pass a
configured :class:`Observer`), or globally with the ``REPRO_OBS=1``
environment variable.  Instrumentation observes and never schedules:
enabling telemetry cannot change simulated results, and with telemetry
off every instrumentation point reduces to one ``is None`` check.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish,
)
from repro.obs.spans import Observer, Span
from repro.obs.introspect import DESSampler, sample_des
from repro.obs.export import (
    chrome_trace_events,
    dumps_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_csv,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Span",
    "DESSampler",
    "sample_des",
    "publish",
    "chrome_trace_events",
    "to_chrome_trace",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_spans_csv",
    "observer_from_env",
    "env_observability_enabled",
]

#: Environment variable switching telemetry on for every ``Simulation``
#: that does not pass an explicit ``observe=`` argument.
OBS_ENV_VAR = "REPRO_OBS"

_TRUTHY = ("1", "true", "yes", "on")


def env_observability_enabled() -> bool:
    """True when ``REPRO_OBS`` asks for telemetry."""
    return os.environ.get(OBS_ENV_VAR, "").strip().lower() in _TRUTHY


def observer_from_env(env=None) -> Optional[Observer]:
    """Build (and optionally attach) an observer if ``REPRO_OBS`` is set.

    Returns ``None`` when the variable is unset or falsy.  When ``env``
    (a :class:`~repro.des.environment.Environment`) is given and telemetry
    is enabled, the observer is attached as ``env.observer`` so the DES
    core, flows and I/O controller pick it up.
    """
    if not env_observability_enabled():
        return None
    observer = Observer()
    if env is not None:
        env.observer = observer
    return observer
