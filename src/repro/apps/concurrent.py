"""Concurrent application instances (Exp 2 and Exp 3).

The paper's concurrency experiments run 1 to 32 independent instances of
the synthetic application on one 32-core compute node, each instance
operating on its own files of 3 GB.  These helpers create the instances
(with per-instance file names so the page cache sees distinct files), stage
their input files and submit them to a :class:`~repro.simulator.Simulation`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.filesystem.file import File
from repro.simulator.simulation import Simulation
from repro.simulator.storage_service import StorageService
from repro.simulator.workflow import Workflow
from repro.apps.synthetic import synthetic_workflow


def make_instances(count: int, input_size: float,
                   workflow_factory: Optional[Callable[..., Workflow]] = None,
                   ) -> List[Tuple[Workflow, File]]:
    """Create ``count`` independent synthetic-application instances.

    Returns a list of ``(workflow, input_file)`` pairs; the input file is
    the one that must be staged before execution.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    factory = workflow_factory or synthetic_workflow
    instances: List[Tuple[Workflow, File]] = []
    for index in range(count):
        name = f"app{index + 1}"
        workflow = factory(input_size, name=name, file_prefix=f"{name}_")
        input_file = workflow.input_files()[0]
        instances.append((workflow, input_file))
    return instances


def stage_and_submit_instances(simulation: Simulation, instances,
                               *, host: str, storage: StorageService,
                               chunk_size: Optional[float] = None) -> None:
    """Stage the input file of each instance and submit it for execution."""
    for workflow, input_file in instances:
        simulation.stage_file(input_file, storage)
        simulation.submit_workflow(
            workflow,
            host=host,
            storage=storage,
            label=workflow.name,
            chunk_size=chunk_size,
        )
