"""The Nighres cortical-reconstruction workflow (Section III.D, Table II).

The real application is a Python script calling Java image-processing
routines from the Nighres toolbox; the paper patches it to remove lazy
loading and compression and injects the measured CPU times.  The workflow
has four sequential steps:

================================  ==========  ===========  ========
Step                              Input (MB)  Output (MB)  CPU (s)
================================  ==========  ===========  ========
Skull stripping                   295         393          137
Tissue classification             197         1376         614
Region extraction                 1376        885          76
Cortical reconstruction           393         786          272
================================  ==========  ===========  ========

Each step reads files produced by previous steps, or initial input files,
and writes files that may or may not be read later: region extraction
consumes the tissue-classification output (1376 MB) and cortical
reconstruction re-reads the skull-stripping output (393 MB), which is what
makes the later reads benefit from the page cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.filesystem.file import File
from repro.platform.cpu import CPU
from repro.simulator.workflow import Task, Workflow
from repro.units import MB


@dataclass(frozen=True)
class NighresStep:
    """One step of the Nighres workflow (Table II)."""

    name: str
    input_size: float
    output_size: float
    cpu_time: float


#: Table II — the four steps of the cortical reconstruction workflow.
NIGHRES_STEPS: Tuple[NighresStep, ...] = (
    NighresStep("skull_stripping", 295 * MB, 393 * MB, 137.0),
    NighresStep("tissue_classification", 197 * MB, 1376 * MB, 614.0),
    NighresStep("region_extraction", 1376 * MB, 885 * MB, 76.0),
    NighresStep("cortical_reconstruction", 393 * MB, 786 * MB, 272.0),
)


def nighres_files(prefix: str = "") -> Dict[str, File]:
    """All files of the workflow, keyed by role."""
    return {
        "t1w": File(f"{prefix}t1_weighted", NIGHRES_STEPS[0].input_size),
        "t1map": File(f"{prefix}t1_map", NIGHRES_STEPS[1].input_size),
        "skull_stripped": File(f"{prefix}skull_stripped", NIGHRES_STEPS[0].output_size),
        "tissue_classified": File(f"{prefix}tissue_classified", NIGHRES_STEPS[1].output_size),
        "region_extracted": File(f"{prefix}region_extracted", NIGHRES_STEPS[2].output_size),
        "cortical_surface": File(f"{prefix}cortical_surface", NIGHRES_STEPS[3].output_size),
    }


def nighres_input_files(prefix: str = "") -> List[File]:
    """Files that must be staged before running the workflow."""
    files = nighres_files(prefix)
    return [files["t1w"], files["t1map"]]


def nighres_workflow(*, name: str = "nighres", file_prefix: str = "",
                     core_speed: float = CPU.DEFAULT_SPEED) -> Workflow:
    """Build the four-step Nighres workflow.

    The file sizes and CPU times come from Table II (participant 0027430 of
    the MPI-CBS dataset).  Step ordering is sequential, as in the real
    Python script: each step only starts once the previous one finished.
    """
    files = nighres_files(file_prefix)
    workflow = Workflow(name)

    skull = workflow.add_task(
        Task.from_cpu_time(
            "skull_stripping",
            NIGHRES_STEPS[0].cpu_time,
            inputs=[files["t1w"]],
            outputs=[files["skull_stripped"]],
            core_speed=core_speed,
        )
    )
    tissue = workflow.add_task(
        Task.from_cpu_time(
            "tissue_classification",
            NIGHRES_STEPS[1].cpu_time,
            inputs=[files["t1map"]],
            outputs=[files["tissue_classified"]],
            core_speed=core_speed,
        )
    )
    region = workflow.add_task(
        Task.from_cpu_time(
            "region_extraction",
            NIGHRES_STEPS[2].cpu_time,
            inputs=[files["tissue_classified"]],
            outputs=[files["region_extracted"]],
            core_speed=core_speed,
        )
    )
    cortical = workflow.add_task(
        Task.from_cpu_time(
            "cortical_reconstruction",
            NIGHRES_STEPS[3].cpu_time,
            inputs=[files["skull_stripped"]],
            outputs=[files["cortical_surface"]],
            core_speed=core_speed,
        )
    )

    # The real application runs its steps strictly sequentially.
    workflow.add_dependency(skull, tissue)
    workflow.add_dependency(tissue, region)
    workflow.add_dependency(region, cortical)
    return workflow
