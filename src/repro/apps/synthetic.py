"""The synthetic application (Section III.D, Table I).

The application consists of three single-core, sequential tasks.  Each task
reads the file produced by the previous task, increments every byte of the
file (to emulate real processing) and writes the resulting data to disk.
Files are numbered by ascending access time: File 1 is read by Task 1,
File 2 is written by Task 1 and read by Task 2, and so on; four files of
identical size are therefore involved.  The anonymous memory used by the
application is released after each task.

The per-task CPU times were measured on the real cluster for a set of input
sizes (Table I) and are injected in the simulation; intermediate sizes are
linearly interpolated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.filesystem.file import File
from repro.platform.cpu import CPU
from repro.simulator.workflow import Task, Workflow
from repro.units import GB

#: Table I — measured CPU time (seconds) per task for each input size (GB).
SYNTHETIC_CPU_TIMES: Dict[float, float] = {
    3.0: 4.4,
    20.0: 28.0,
    50.0: 75.0,
    75.0: 110.0,
    100.0: 155.0,
}

#: Number of pipeline tasks in the synthetic application.
NUM_TASKS = 3


def synthetic_cpu_time(input_size: float) -> float:
    """CPU time (seconds) of one task for an input of ``input_size`` bytes.

    Sizes present in Table I return the measured value; other sizes are
    linearly interpolated (and extrapolated from the two nearest points
    outside the measured range), which keeps the CPU model smooth for
    what-if studies.
    """
    size_gb = input_size / GB
    points = sorted(SYNTHETIC_CPU_TIMES.items())
    for gb, seconds in points:
        if abs(size_gb - gb) < 1e-9:
            return seconds
    # Linear interpolation / extrapolation.
    if size_gb <= points[0][0]:
        (x0, y0), (x1, y1) = points[0], points[1]
    elif size_gb >= points[-1][0]:
        (x0, y0), (x1, y1) = points[-2], points[-1]
    else:
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= size_gb <= x1:
                break
    slope = (y1 - y0) / (x1 - x0)
    return max(0.0, y0 + slope * (size_gb - x0))


def synthetic_files(input_size: float, prefix: str = "") -> List[File]:
    """The four files of the pipeline, all of size ``input_size`` bytes."""
    return [File(f"{prefix}file{i + 1}", input_size) for i in range(NUM_TASKS + 1)]


def synthetic_workflow(input_size: float, *, name: str = "synthetic",
                       file_prefix: Optional[str] = None,
                       cpu_time: Optional[float] = None,
                       files: Optional[Sequence[File]] = None,
                       core_speed: float = CPU.DEFAULT_SPEED) -> Workflow:
    """Build the three-task synthetic pipeline.

    Parameters
    ----------
    input_size:
        Size of every file of the pipeline, in bytes.
    name:
        Workflow name (also the default application label in traces).
    file_prefix:
        Prefix for file names, so that concurrent instances use distinct
        files (defaults to ``"<name>_"`` when ``files`` is not given and the
        name is not the default).
    cpu_time:
        Per-task CPU time in seconds; defaults to the Table I value
        (interpolated if needed).
    files:
        Explicit list of the four pipeline files (overrides ``file_prefix``).
    """
    if files is None:
        prefix = file_prefix if file_prefix is not None else (
            f"{name}_" if name != "synthetic" else ""
        )
        files = synthetic_files(input_size, prefix=prefix)
    if len(files) != NUM_TASKS + 1:
        raise ValueError(f"the synthetic pipeline needs {NUM_TASKS + 1} files")
    task_cpu_time = cpu_time if cpu_time is not None else synthetic_cpu_time(input_size)

    workflow = Workflow(name)
    for index in range(NUM_TASKS):
        workflow.add_task(
            Task.from_cpu_time(
                f"task{index + 1}",
                task_cpu_time,
                inputs=[files[index]],
                outputs=[files[index + 1]],
                core_speed=core_speed,
                release_memory=True,
            )
        )
    return workflow
