"""Application models evaluated in the paper.

* :mod:`repro.apps.synthetic` — the synthetic C application: three
  sequential single-core tasks, each reading the file produced by the
  previous task, incrementing every byte and writing the result (Table I).
* :mod:`repro.apps.nighres` — the Nighres cortical-reconstruction workflow
  (skull stripping, tissue classification, region extraction, cortical
  reconstruction; Table II).
* :mod:`repro.apps.concurrent` — helpers to run many independent instances
  of an application on the same host (Exp 2 and Exp 3).
"""

from repro.apps.synthetic import (
    SYNTHETIC_CPU_TIMES,
    synthetic_cpu_time,
    synthetic_files,
    synthetic_workflow,
)
from repro.apps.nighres import NIGHRES_STEPS, nighres_workflow, nighres_input_files
from repro.apps.concurrent import make_instances, stage_and_submit_instances

__all__ = [
    "SYNTHETIC_CPU_TIMES",
    "synthetic_cpu_time",
    "synthetic_files",
    "synthetic_workflow",
    "NIGHRES_STEPS",
    "nighres_workflow",
    "nighres_input_files",
    "make_instances",
    "stage_and_submit_instances",
]
