"""Exception hierarchy shared across the simulator.

Every error raised by the library derives from :class:`SimulationError` so
that callers can catch simulator failures without also swallowing Python
programming errors.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by pagecache-sim."""


class ConfigurationError(SimulationError):
    """An invalid platform, cache or experiment configuration was supplied."""


class StorageError(SimulationError):
    """A storage operation could not be carried out (e.g. disk full)."""


class FileNotFoundInSimulation(StorageError):
    """A simulated file was accessed before being registered or written."""


class InsufficientMemoryError(SimulationError):
    """The simulated host ran out of memory for anonymous allocations."""


class CacheConsistencyError(SimulationError):
    """An internal invariant of the page cache model was violated.

    These errors indicate a bug in the simulator rather than a mis-use of the
    API; they are raised eagerly so that accounting drift never silently
    corrupts results.
    """


class SchedulingError(SimulationError):
    """A workflow could not be scheduled (cycle, missing file, bad host)."""


class FlowAborted(SimulationError):
    """An in-flight transfer was aborted (its device crashed).

    Thrown into any process still waiting on the transfer.  Fault-tolerant
    consumers (the background flusher, retry loops) catch it and move on;
    processes killed alongside the device are interrupted separately and
    never observe it.
    """


class SimulationDeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class SnapshotError(SimulationError):
    """A simulation snapshot could not be written, read or restored."""


class SnapshotIntegrityError(SnapshotError):
    """A restored simulation's state does not match its snapshot.

    Raised when the deterministic replay that rebuilds a snapshotted
    simulation produces a state fingerprint different from the one
    recorded in the snapshot file — the file is corrupt, was produced by
    a different code version, or the simulation is not deterministic.
    """


class ServiceError(SimulationError):
    """The simulation service could not carry out a request."""


class ServiceBackpressure(ServiceError):
    """The service's admission queue is full — retry after a delay.

    The explicit backpressure signal of the service mode: a submission
    beyond the queue bound is *rejected*, never dropped silently or
    queued unbounded.  ``retry_after`` suggests the client delay in
    seconds (HTTP maps this to 429 + Retry-After).
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceDraining(ServiceError):
    """The service is draining (or drained) and accepts no new work."""
