"""NFS mount configuration.

Exp 3 of the paper runs the synthetic application against a 50 GiB
NFS-mounted partition of a remote disk.  As is common in HPC environments
the mount is configured so that data loss cannot happen on a client crash:
there is **no client write cache**, the **server cache is writethrough**,
and **read caches are enabled on both sides** (the simulators model the
server-side read cache, which is the one shared by all concurrent
application instances).

:class:`NFSConfig` captures these options so that the remote storage
service can be reconfigured for what-if studies (e.g. enabling a writeback
server cache, which the paper's model also supports).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NFSConfig:
    """Caching behaviour of an NFS mount.

    Attributes
    ----------
    server_cache_mode:
        ``"writethrough"`` (paper's Exp 3 configuration), ``"writeback"``
        or ``"none"``.
    server_read_cache:
        Whether reads are served from the server's page cache when possible.
    client_read_cache:
        Whether the client keeps a read cache.  The paper's model does not
        simulate the client read cache for NFS (the effect is dominated by
        the shared server cache), so this defaults to ``False``.
    client_write_cache:
        Whether the client buffers writes.  Disabled in HPC deployments to
        avoid data loss, and in the paper's experiments.
    """

    server_cache_mode: str = "writethrough"
    server_read_cache: bool = True
    client_read_cache: bool = False
    client_write_cache: bool = False

    def __post_init__(self) -> None:
        if self.server_cache_mode not in ("writethrough", "writeback", "none"):
            raise ValueError(
                "server_cache_mode must be 'writethrough', 'writeback' or 'none', "
                f"got {self.server_cache_mode!r}"
            )

    @classmethod
    def hpc_default(cls) -> "NFSConfig":
        """The configuration used in the paper's Exp 3."""
        return cls()
