"""File and filesystem abstractions.

Files in the simulator are metadata only (a name and a size); their
location is tracked by a :class:`~repro.filesystem.registry.FileRegistry`
mapping files to the storage services that hold a copy.  The
:class:`~repro.filesystem.nfs.NFSConfig` dataclass captures the NFS mount
options that matter to the model (client/server caching behaviour), which
in the paper's Exp 3 are "no client write cache, server writethrough,
client and server read caches enabled".
"""

from repro.filesystem.file import File
from repro.filesystem.registry import FileRegistry
from repro.filesystem.nfs import NFSConfig

__all__ = ["File", "FileRegistry", "NFSConfig"]
