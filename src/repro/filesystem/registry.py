"""File location registry.

The registry answers "where does file X live?" for the workflow management
system: it maps file names to the storage services holding a copy, and it
records which files currently exist (inputs staged before the execution or
outputs already produced).  It mirrors WRENCH's ``FileRegistryService``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FileNotFoundInSimulation
from repro.filesystem.file import File


class FileRegistry:
    """Tracks which storage service holds each simulated file."""

    def __init__(self) -> None:
        self._locations: Dict[str, List[object]] = {}
        self._files: Dict[str, File] = {}

    # ------------------------------------------------------------------- api
    def add_entry(self, file: File, storage_service) -> None:
        """Record that ``storage_service`` holds a copy of ``file``."""
        self._files[file.name] = file
        services = self._locations.setdefault(file.name, [])
        if storage_service not in services:
            services.append(storage_service)

    def remove_entry(self, file: File, storage_service) -> None:
        """Remove the record of ``storage_service`` holding ``file``."""
        services = self._locations.get(file.name, [])
        if storage_service in services:
            services.remove(storage_service)
        if not services:
            self._locations.pop(file.name, None)

    def lookup(self, file: File) -> List[object]:
        """Return the storage services holding ``file`` (may be empty)."""
        return list(self._locations.get(file.name, []))

    def primary_location(self, file: File):
        """Return the first registered location of ``file``.

        Raises
        ------
        FileNotFoundInSimulation
            If the file is not present on any storage service.
        """
        services = self._locations.get(file.name)
        if not services:
            raise FileNotFoundInSimulation(
                f"file {file.name!r} is not present on any storage service"
            )
        return services[0]

    def exists(self, file: File) -> bool:
        """True if at least one storage service holds ``file``."""
        return bool(self._locations.get(file.name))

    def file_by_name(self, name: str) -> Optional[File]:
        """Return the :class:`File` registered under ``name``, if any."""
        return self._files.get(name)

    def known_files(self) -> List[File]:
        """All files that have ever been registered."""
        return list(self._files.values())

    def __len__(self) -> int:
        return len(self._locations)

    def __repr__(self) -> str:
        return f"<FileRegistry files={len(self._locations)}>"
