"""Simulated files.

A file is pure metadata: a unique name and a size in bytes.  The actual
bytes are never materialised; storage devices and the page cache only track
amounts of data.
"""

from __future__ import annotations

from repro.units import format_size


class File:
    """A simulated file.

    Parameters
    ----------
    name:
        Unique file name (also used as the page-cache key).
    size:
        File size in bytes; must be non-negative.
    """

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: float):
        if not name:
            raise ValueError("a file needs a non-empty name")
        if size < 0:
            raise ValueError(f"file {name!r}: size must be >= 0, got {size}")
        self.name = str(name)
        self.size = float(size)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, File):
            return self.name == other.name and self.size == other.size
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.size))

    def __repr__(self) -> str:
        return f"File({self.name!r}, {format_size(self.size)})"
