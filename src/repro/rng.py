"""Deterministic seeded random number generation.

Scheduler experiments must be reproducible by construction: the same seed
must produce the same job mix, the same arrival times and therefore the
same schedule, on every machine and every run.  :class:`DeterministicRNG`
wraps :class:`random.Random` behind a small, explicit API (an explicit seed
is mandatory — there is no "seed from the clock" path) and adds
:meth:`DeterministicRNG.spawn` to derive independent child streams from
string keys, so that e.g. the arrival process and the job-size draws do not
perturb each other when one of them changes.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(seed: int, key: str) -> int:
    """Derive a child seed from ``(seed, key)``, stable across platforms.

    This is the seed-derivation primitive behind
    :meth:`DeterministicRNG.spawn` and the sweep engine's per-point seeds
    (:func:`repro.experiments.runner.derive_point_seed`): SHA-256 of
    ``"{seed}:{key}"``, so the result depends only on the two inputs —
    never on process, platform or hash randomization.
    """
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Backwards-compatible alias (pre-PR-4 internal name).
_derive_seed = derive_seed


class DeterministicRNG:
    """A seeded random source for reproducible experiments.

    Parameters
    ----------
    seed:
        Mandatory integer seed.  Two generators built with the same seed
        produce identical sequences.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._random = random.Random(seed)
        #: API-level draws made so far.  Snapshot bookkeeping: together
        #: with ``seed`` (and :meth:`state_digest` as ground truth) this
        #: pins the stream position of a live generator, so a restored
        #: simulation can prove its RNG streams sit exactly where the
        #: original's did.
        self.n_draws = 0

    # ------------------------------------------------------------------ draws
    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        self.n_draws += 1
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        self.n_draws += 1
        return self._random.uniform(low, high)

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (both ends included)."""
        self.n_draws += 1
        return self._random.randint(low, high)

    def exponential(self, rate: float) -> float:
        """Exponential variate with the given ``rate`` (mean ``1 / rate``).

        Computed by inversion from the underlying uniform so the draw
        consumes exactly one uniform, keeping derived streams easy to
        reason about.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.n_draws += 1
        u = self._random.random()
        return -math.log(1.0 - u) / rate

    def choice(self, sequence: Sequence[T]) -> T:
        """One uniformly chosen element of ``sequence``."""
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        self.n_draws += 1
        return sequence[self._random.randrange(len(sequence))]

    def shuffled(self, sequence: Sequence[T]) -> List[T]:
        """A shuffled copy of ``sequence`` (the input is left untouched)."""
        items = list(sequence)
        self.n_draws += 1
        self._random.shuffle(items)
        return items

    # ------------------------------------------------------------------ state
    def state_digest(self) -> str:
        """Digest of the underlying generator state (16 hex chars).

        The Mersenne Twister state is a tuple of plain integers whose
        ``repr`` is platform-independent, so equal digests mean the two
        generators will produce identical futures.
        """
        state = self._random.getstate()
        return hashlib.sha256(repr(state).encode("utf-8")).hexdigest()[:16]

    # ---------------------------------------------------------------- streams
    def spawn(self, key: str) -> "DeterministicRNG":
        """Return an independent child generator derived from ``key``.

        The child's sequence depends only on ``(seed, key)``, not on how
        many draws the parent has made, so adding draws to one part of an
        experiment never changes the values seen by another part.
        """
        return DeterministicRNG(derive_seed(self.seed, key))

    def __repr__(self) -> str:
        return f"DeterministicRNG(seed={self.seed})"
