"""The service's base simulation: an empty streaming cluster.

``build_service_cluster`` is a registered snapshot builder (experiment
name ``"service-cluster"``), so service snapshots restore through the
exact same recipe machinery as every batch experiment.  Unlike the batch
builders it submits **no** workload — jobs stream in over the service's
lifetime and are reconstructed from the submission log on replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.filesystem.file import File
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.units import MB

DEFAULT_N_NODES = 4
DEFAULT_CORES_PER_NODE = 8
DEFAULT_N_DATASETS = 8
DEFAULT_INPUT_SIZE = 256 * MB
DEFAULT_CHUNK_SIZE = 100 * MB


@dataclass
class ServiceSummary:
    """End-of-drain metrics of one service lifetime."""

    n_jobs: int
    makespan: float
    cache_hit_ratio: float
    mean_wait_time: float
    utilization: float


def build_service_cluster(*, n_nodes: int = DEFAULT_N_NODES,
                          cores_per_node: int = DEFAULT_CORES_PER_NODE,
                          n_datasets: int = DEFAULT_N_DATASETS,
                          input_size: float = DEFAULT_INPUT_SIZE,
                          chunk_size: float = DEFAULT_CHUNK_SIZE,
                          policy: str = "fifo",
                          placement: str = "cache",
                          eviction_policy: object = "lru",
                          fault_plan=None) -> Simulation:
    """Build the empty streaming cluster the service feeds (recipe-bound).

    Stages ``n_datasets`` shared input datasets replicated on every
    node's local disk (clients reference them by index) and attaches the
    pool as ``sim.service_datasets`` for the injection path.
    """
    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback",
            chunk_size=chunk_size,
            trace_interval=None,
        ),
        eviction_policy=(None if eviction_policy == "lru" else eviction_policy),
        fault_plan=fault_plan,
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(
        policy=policy, placement=placement, streaming=True
    )
    datasets: List[File] = [
        File(f"dataset{d}", input_size) for d in range(n_datasets)
    ]
    for dataset in datasets:
        simulation.stage_file_replicated(dataset)
    simulation.service_datasets = datasets

    from repro.snapshot.recipe import SimRecipe

    simulation.bind_recipe(SimRecipe("service-cluster", dict(
        n_nodes=n_nodes, cores_per_node=cores_per_node,
        n_datasets=n_datasets, input_size=input_size,
        chunk_size=chunk_size, policy=policy, placement=placement,
        eviction_policy=eviction_policy, fault_plan=fault_plan,
    )))
    return simulation


def finish_service_cluster(result, **_params) -> Optional[ServiceSummary]:
    """Reduce a drained service run to its summary metrics."""
    metrics = result.scheduler
    if metrics is None:
        return None
    return ServiceSummary(
        n_jobs=metrics.n_jobs,
        makespan=metrics.makespan,
        cache_hit_ratio=result.read_cache_hit_ratio(),
        mean_wait_time=metrics.mean_wait_time,
        utilization=metrics.utilization,
    )
