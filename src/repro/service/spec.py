"""Wire-format job specifications for the simulation service.

A :class:`JobSpec` is what a client submits over the HTTP API: a small,
JSON-able description of one batch job — which shared dataset it reads,
how long it computes, how many cores it wants.  The service validates the
spec *before* appending it to the durable submission log, so every logged
entry is guaranteed to inject cleanly on replay; the spec's dict form is
the log's (and therefore the recovery protocol's) canonical encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.simulator.workflow import Task, Workflow
from repro.units import MB

#: Default size of each job's private output file.
DEFAULT_OUTPUT_SIZE = 64 * MB

#: Fields a submission body may carry (anything else is rejected loudly).
_FIELDS = (
    "label", "dataset", "runtime", "cores", "priority", "arrival_time",
    "output_size",
)


@dataclass(frozen=True)
class JobSpec:
    """One submitted job, as it travels over the wire and into the log.

    Attributes
    ----------
    label:
        Unique job label (assigned by the service from the log sequence
        number when the client omits it).
    dataset:
        Index into the service cluster's shared dataset pool.
    runtime:
        CPU seconds of the job's single compute task.
    cores:
        Cores reserved for the job.
    priority:
        Scheduling priority (higher runs first under priority policies).
    arrival_time:
        Requested simulated arrival; the effective arrival is
        ``max(injection_time, arrival_time)`` — a job cannot arrive in
        the simulated past.  ``None`` means "arrive at injection".
    output_size:
        Bytes of the job's private output file.
    """

    label: str
    dataset: int
    runtime: float
    cores: int = 1
    priority: int = 0
    arrival_time: Optional[float] = None
    output_size: float = DEFAULT_OUTPUT_SIZE

    # ------------------------------------------------------------- validation
    def validate(self, *, n_datasets: int, max_cores: int) -> None:
        """Check the spec against the serving cluster's limits."""
        if not self.label:
            raise ConfigurationError("job label must be non-empty")
        if not isinstance(self.dataset, int) or isinstance(self.dataset, bool):
            raise ConfigurationError(
                f"dataset must be an integer index, got {self.dataset!r}"
            )
        if not 0 <= self.dataset < n_datasets:
            raise ConfigurationError(
                f"dataset index {self.dataset} out of range "
                f"(the service stages {n_datasets} datasets)"
            )
        if not self.runtime > 0:
            raise ConfigurationError(
                f"runtime must be > 0 seconds, got {self.runtime!r}"
            )
        if not isinstance(self.cores, int) or self.cores < 1:
            raise ConfigurationError(
                f"cores must be a positive integer, got {self.cores!r}"
            )
        if self.cores > max_cores:
            raise ConfigurationError(
                f"job needs {self.cores} cores but the largest node has "
                f"only {max_cores}"
            )
        if self.arrival_time is not None and self.arrival_time < 0:
            raise ConfigurationError(
                f"arrival_time must be >= 0, got {self.arrival_time!r}"
            )
        if not self.output_size >= 0:
            raise ConfigurationError(
                f"output_size must be >= 0, got {self.output_size!r}"
            )

    # --------------------------------------------------------------- encoding
    def as_dict(self) -> Dict[str, Any]:
        """The JSON-able log encoding."""
        return {
            "label": self.label,
            "dataset": self.dataset,
            "runtime": self.runtime,
            "cores": self.cores,
            "priority": self.priority,
            "arrival_time": self.arrival_time,
            "output_size": self.output_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], *,
                  default_label: Optional[str] = None) -> "JobSpec":
        """Decode a submission body / log entry; unknown keys are errors."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a job spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown job spec field(s) {unknown}; "
                f"accepted fields: {sorted(_FIELDS)}"
            )
        if "dataset" not in data or "runtime" not in data:
            raise ConfigurationError(
                "a job spec needs at least 'dataset' and 'runtime'"
            )
        label = data.get("label") or default_label
        if label is None:
            raise ConfigurationError("job label must be non-empty")
        try:
            runtime = float(data["runtime"])
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"runtime must be a number, got {data['runtime']!r}"
            ) from None
        arrival = data.get("arrival_time")
        return cls(
            label=str(label),
            dataset=data["dataset"],
            runtime=runtime,
            cores=data.get("cores", 1),
            priority=int(data.get("priority", 0)),
            arrival_time=None if arrival is None else float(arrival),
            output_size=float(data.get("output_size", DEFAULT_OUTPUT_SIZE)),
        )

    # ------------------------------------------------------------------ build
    def build_workflow(self, datasets: List[File]) -> Workflow:
        """The single-task workflow this spec describes.

        ``datasets`` is the service cluster's staged pool; the job reads
        one shared dataset, computes for ``runtime`` CPU seconds, and
        writes a private output file.
        """
        workflow = Workflow(self.label)
        workflow.add_task(
            Task.from_cpu_time(
                "process",
                self.runtime,
                inputs=[datasets[self.dataset]],
                outputs=[File(f"{self.label}_out", self.output_size)],
            )
        )
        return workflow
