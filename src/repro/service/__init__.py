"""Simulation-as-a-service: a supervised, crash-recoverable worker.

The long-lived counterpart of the batch experiment scripts: a
:class:`~repro.service.core.SimulationService` feeds streaming job
submissions into a :class:`~repro.scheduler.cluster.ClusterScheduler`,
advancing the DES incrementally between arrivals; a stdlib HTTP/JSON API
(:mod:`repro.service.http`) exposes submit/status/metrics/snapshot/drain
with idempotent tokens and explicit backpressure; and a
:class:`~repro.service.supervisor.Supervisor` restarts a crashed worker
from the newest verified snapshot plus the durable submission log.

Run one from the command line with ``python -m repro.service``.
"""

from repro.service.base import (
    ServiceSummary,
    build_service_cluster,
    finish_service_cluster,
)
from repro.service.core import (
    SimulationService,
    apply_entry,
    canonical_result,
    replay_entries,
    replay_result,
)
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.log import LogEntry, SubmissionLog
from repro.service.spec import JobSpec
from repro.service.supervisor import (
    CRASH_EXIT_CODE,
    ServiceConfig,
    Supervisor,
    worker_main,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "JobSpec",
    "LogEntry",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceSummary",
    "SimulationService",
    "SubmissionLog",
    "Supervisor",
    "apply_entry",
    "build_service_cluster",
    "canonical_result",
    "finish_service_cluster",
    "make_server",
    "replay_entries",
    "replay_result",
    "worker_main",
]
