"""Process supervision: keep the service alive across crashes.

The :class:`Supervisor` runs the service (worker loop + HTTP server) in a
forked child process and watches its exit code.  A clean drain exits 0
and ends supervision; anything else — a SIGKILL, an ``os._exit``, an
unhandled exception — triggers a restart, and the restarted worker
recovers from the data directory: newest verified snapshot, submission
log replay, resume serving.  Acknowledged submissions survive because
their log entries were fsync'd before the ack.

The child writes its bound HTTP port to ``<data_dir>/http.port`` once the
server is listening (ports can change across restarts when ``port=0``);
:meth:`Supervisor.port` polls that file.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError, ServiceError
from repro.service.core import SimulationService
from repro.service.http import make_server
from repro.snapshot import SimRecipe, SnapshotPlan

#: The child's exit code for a crashed worker thread (sysexits EX_SOFTWARE).
CRASH_EXIT_CODE = 70

PORT_FILE = "http.port"

#: Grace period after a drain before the HTTP server stops, so in-flight
#: responses (the drain summary, a follow-up ``GET /result``) can flush.
DRAIN_LINGER = 1.0


@dataclass
class ServiceConfig:
    """Everything a worker process needs to serve one data directory."""

    data_dir: Union[str, Path]
    recipe: Optional[SimRecipe] = None
    host: str = "127.0.0.1"
    port: int = 0
    snapshot_plan: Optional[SnapshotPlan] = field(
        default_factory=lambda: SnapshotPlan.fixed(2.0, keep=3)
    )
    queue_capacity: int = 64
    request_timeout: float = 30.0
    verify: bool = True

    def build_service(self) -> SimulationService:
        return SimulationService(
            self.data_dir,
            recipe=self.recipe,
            snapshot_plan=self.snapshot_plan,
            queue_capacity=self.queue_capacity,
            request_timeout=self.request_timeout,
            verify=self.verify,
        )


def write_port_file(data_dir: Union[str, Path], port: int) -> Path:
    path = Path(data_dir) / PORT_FILE
    tmp = path.with_suffix(".tmp")
    tmp.write_text(f"{port}\n", encoding="utf-8")
    tmp.replace(path)
    return path


def worker_main(config: ServiceConfig) -> None:
    """Child-process entry point: recover, serve, drain, exit.

    Exit codes: 0 after a graceful drain (SIGTERM or POST /drain);
    :data:`CRASH_EXIT_CODE` when the worker thread died — the supervisor
    restarts on any non-zero exit.
    """
    service = config.build_service()
    service.start()
    server = make_server(service, config.host, config.port)
    write_port_file(config.data_dir, server.server_address[1])

    def _terminate(_signum, _frame):
        service.request_drain()

    signal.signal(signal.SIGTERM, _terminate)

    http_thread = threading.Thread(target=server.serve_forever,
                                   name="sim-service-http", daemon=True)
    http_thread.start()
    try:
        service.join()
    except BaseException:
        server.shutdown()
        os._exit(CRASH_EXIT_CODE)
    time.sleep(DRAIN_LINGER)
    server.shutdown()


class Supervisor:
    """Run the service under restart-on-crash supervision.

    Parameters
    ----------
    config:
        The worker's service configuration.
    max_restarts:
        Restarts allowed before the supervisor gives up (the data
        directory stays intact for manual recovery).
    backoff:
        Seconds between a crash and the restart.
    """

    def __init__(self, config: ServiceConfig, *, max_restarts: int = 5,
                 backoff: float = 0.2):
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX only
            raise ConfigurationError(
                "the service supervisor requires a POSIX platform (fork)"
            )
        self.config = config
        self.max_restarts = int(max_restarts)
        self.backoff = float(backoff)
        self.restarts = 0
        self.gave_up = False
        self._context = multiprocessing.get_context("fork")
        self._process = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._exited = threading.Event()

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "Supervisor":
        if self._monitor is not None:
            raise ServiceError("the supervisor has already been started")
        self._spawn()
        self._monitor = threading.Thread(target=self._watch,
                                         name="sim-service-supervisor",
                                         daemon=True)
        self._monitor.start()
        return self

    def _spawn(self) -> None:
        port_file = Path(self.config.data_dir) / PORT_FILE
        try:
            port_file.unlink()
        except OSError:
            pass
        self._process = self._context.Process(
            target=worker_main, args=(self.config,),
            name="sim-service-worker",
        )
        self._process.start()

    def _watch(self) -> None:
        while True:
            process = self._process
            process.join()
            if self._stopping.is_set() or process.exitcode == 0:
                break
            if self.restarts >= self.max_restarts:
                self.gave_up = True
                break
            self.restarts += 1
            time.sleep(self.backoff)
            self._spawn()
        self._exited.set()

    # ------------------------------------------------------------------- api
    @property
    def pid(self) -> Optional[int]:
        """The current worker process id (changes across restarts)."""
        process = self._process
        return process.pid if process is not None else None

    def port(self, timeout: float = 10.0) -> int:
        """The worker's bound HTTP port, polled from its port file."""
        path = Path(self.config.data_dir) / PORT_FILE
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                return int(path.read_text(encoding="utf-8").strip())
            except (OSError, ValueError):
                time.sleep(0.02)
        raise ServiceError(
            f"worker did not publish its port within {timeout}s"
        )

    @property
    def alive(self) -> bool:
        """Whether a worker process is currently running."""
        process = self._process
        return process is not None and process.is_alive()

    def kill_worker(self) -> int:
        """SIGKILL the current worker (crash injection for tests/CI)."""
        process = self._process
        if process is None or process.pid is None:
            raise ServiceError("no worker process to kill")
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Wait until supervision ends (clean exit or give-up)."""
        return self._exited.wait(timeout)

    def stop(self, *, timeout: float = 60.0) -> int:
        """Gracefully stop: SIGTERM the worker (drain) and wait.

        Returns the worker's final exit code.
        """
        self._stopping.set()
        process = self._process
        if process is not None and process.is_alive():
            try:
                os.kill(process.pid, signal.SIGTERM)
            except OSError:
                pass
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        self._exited.wait(timeout)
        return process.exitcode if process is not None else 0
