"""Durable append-only submission log.

The log is the service's source of truth: together with the build recipe
it *fully determines* the simulation's results.  Every accepted operation
— a job submission or the close of the submission stream — is appended as
one JSON line and fsync'd **before** the client is acknowledged, so an
acknowledged submission survives any crash.  Recovery replays the log
(optionally on top of a snapshot that already covers a prefix of it) and
reaches a byte-identical state.

Each entry records the simulated *injection time* ``t`` at which the
operation was applied to the paused simulation.  Injection times are
non-decreasing; replay is simply ``step_until(t)`` followed by the
operation, entry by entry.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import SimulationError

#: Log operations.
OP_SUBMIT = "submit"
OP_CLOSE = "close"


class SubmissionLogError(SimulationError):
    """The submission log is corrupt beyond the tolerated truncated tail."""


@dataclass(frozen=True)
class LogEntry:
    """One durable operation: a submission or the stream close."""

    seq: int
    op: str
    t: float
    token: Optional[str] = None
    spec: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"seq": self.seq, "op": self.op, "t": self.t}
        if self.token is not None:
            data["token"] = self.token
        if self.spec is not None:
            data["spec"] = self.spec
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogEntry":
        return cls(
            seq=int(data["seq"]),
            op=str(data["op"]),
            t=float(data["t"]),
            token=data.get("token"),
            spec=data.get("spec"),
        )


class SubmissionLog:
    """Append-only JSON-lines log with fsync-before-ack durability.

    A crash can leave at most one torn line at the *end* of the file
    (the write that never completed); :meth:`entries` drops it, because
    the matching client was never acknowledged.  A torn or unparsable
    line anywhere else means real corruption and raises.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = None

    # ----------------------------------------------------------------- append
    def append(self, entry: LogEntry) -> LogEntry:
        """Durably append ``entry``; returns it once it is on disk."""
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
        line = json.dumps(entry.as_dict(), sort_keys=True,
                          separators=(",", ":"))
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        return entry

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------- read
    def entries(self) -> List[LogEntry]:
        """All durable entries, tolerating one torn trailing line."""
        if not self.path.exists():
            return []
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        entries: List[LogEntry] = []
        for index, line in enumerate(lines):
            try:
                entries.append(LogEntry.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                if index == len(lines) - 1:
                    # Torn tail from a crash mid-append: the entry was
                    # never acknowledged, dropping it is correct.
                    break
                raise SubmissionLogError(
                    f"submission log {self.path} is corrupt at line "
                    f"{index + 1}: {exc}"
                ) from exc
        self._check(entries)
        return entries

    @staticmethod
    def _check(entries: List[LogEntry]) -> None:
        previous_t = 0.0
        for index, entry in enumerate(entries):
            if entry.seq != index:
                raise SubmissionLogError(
                    f"submission log out of sequence at entry {index}: "
                    f"seq={entry.seq}"
                )
            if entry.t < previous_t:
                raise SubmissionLogError(
                    f"submission log time went backwards at seq {entry.seq}: "
                    f"{entry.t} < {previous_t}"
                )
            previous_t = entry.t
            if entry.op not in (OP_SUBMIT, OP_CLOSE):
                raise SubmissionLogError(
                    f"unknown log op {entry.op!r} at seq {entry.seq}"
                )
            if entry.op == OP_CLOSE and index != len(entries) - 1:
                raise SubmissionLogError(
                    f"close op at seq {entry.seq} is not the final entry"
                )
