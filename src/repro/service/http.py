"""Stdlib-only HTTP/JSON front end of the simulation service.

Routes (all JSON)::

    POST /jobs       submit one job spec; body may carry "token" for
                     idempotent retries (or use the Idempotency-Key
                     header).  201 accepted / 200 duplicate / 400 invalid
                     / 429 + Retry-After backpressure / 503 draining.
    GET  /jobs/<label>   lifecycle state of one job.
    GET  /metrics    service + simulation metrics (repro.obs registry).
    GET  /healthz    liveness (ok / draining / drained / crashed).
    GET  /readyz     200 while accepting submissions, 503 otherwise.
    GET  /result     canonical result JSON (404 until drained).
    GET  /summary    small summary of the drained run (404 until drained).
    POST /snapshot   take an out-of-band snapshot now.
    POST /drain      graceful shutdown: drain jobs, final snapshot;
                     blocks until done and returns the summary.

Built on ``http.server.ThreadingHTTPServer`` — per-request threads feed
the service's bounded admission queue; the backpressure contract is
surfaced as 429 with a Retry-After header, never a silent drop.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    ServiceBackpressure,
    ServiceDraining,
    ServiceError,
)
from repro.service.core import SimulationService

#: Cap on accepted request bodies (a job spec is tiny).
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: SimulationService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # --------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the supervisor's business, not stderr's

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw or b"{}")
        except ValueError:
            raise ConfigurationError("request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise ConfigurationError("request body must be a JSON object")
        return data

    # ----------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(200, service.health())
            elif path == "/readyz":
                ready = service.ready
                self._send_json(200 if ready else 503, {"ready": ready})
            elif path == "/metrics":
                self._send_json(200, service.metrics())
            elif path == "/summary":
                try:
                    self._send_json(200, service.summary())
                except ServiceError as exc:
                    self._send_json(404, {"error": str(exc)})
            elif path == "/result":
                try:
                    self._send_text(200, service.canonical_result())
                except ServiceError as exc:
                    self._send_json(404, {"error": str(exc)})
            elif path.startswith("/jobs/"):
                label = path[len("/jobs/"):]
                try:
                    self._send_json(200, service.job_status(label))
                except KeyError:
                    self._send_json(
                        404, {"error": f"unknown job {label!r}"}
                    )
            else:
                self._send_json(404, {"error": f"unknown route {path!r}"})
        except Exception as exc:  # noqa: BLE001 - never kill the server
            self._send_json(500, {"error": repr(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        service = self.server.service
        path = self.path.rstrip("/")
        try:
            if path == "/jobs":
                self._submit(service)
            elif path == "/snapshot":
                self._send_json(200, service.snapshot_now())
            elif path == "/drain":
                body = self._read_body()
                timeout = body.get("timeout")
                summary = service.drain(
                    float(timeout) if timeout is not None else 300.0
                )
                self._send_json(200, summary)
            else:
                self._send_json(404, {"error": f"unknown route {path!r}"})
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceError as exc:
            self._send_json(500, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - never kill the server
            self._send_json(500, {"error": repr(exc)})

    def _submit(self, service: SimulationService) -> None:
        body = self._read_body()
        token = body.pop("token", None) or self.headers.get("Idempotency-Key")
        spec = body.pop("spec", None)
        if spec is None:
            spec = body  # flat bodies are accepted too
        try:
            ack = service.submit(spec, token=token)
        except ServiceBackpressure as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:.0f}"},
            )
            return
        except ServiceDraining as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except FutureTimeoutError:
            self._send_json(
                504,
                {"error": "the submission was not admitted in time; "
                          "retry with the same token"},
            )
            return
        self._send_json(200 if ack.get("duplicate") else 201, ack)


def make_server(service: SimulationService, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind (but do not start) the service's HTTP server."""
    return ServiceHTTPServer((host, port), service)
