"""The simulation service: a long-lived, crash-recoverable worker.

:class:`SimulationService` wraps one streaming simulation (built by
:func:`repro.service.base.build_service_cluster`) behind a bounded
admission queue.  Client threads submit job specs; a single worker thread
owns the simulation and alternates between admitting queued submissions
and advancing the DES with ``step_until`` — taking
:class:`~repro.snapshot.plan.SnapshotPlan`-driven snapshots along the way.

Determinism contract
--------------------
The durable submission log fully determines the results.  Every accepted
operation is applied at a recorded *injection time* ``t`` (the service
frontier, ``max(previous frontier, env.now)``) via the fixed procedure
``step_until(t); apply(op)``; replaying the log through the same
procedure — from scratch or on top of a snapshot covering a prefix —
reproduces the exact event sequence, so recovered runs are byte-identical
to uninterrupted ones (:func:`replay_entries` is the reference
implementation, and what the crash-recovery tests compare against).

Recovery protocol
-----------------
On start, the service restores from the newest *verified* snapshot in its
data directory: rebuild the recipe, replay the log prefix the snapshot
covers (``applied_seq``), ``step_until`` to the snapshot time, check the
fingerprint.  A snapshot that fails verification (or parsing) is skipped
in favour of the next-newest; with no usable snapshot the whole log is
replayed from scratch.  Entries past the snapshot's prefix — acknowledged
submissions the snapshot never saw — are then replayed the ordinary way.
"""

from __future__ import annotations

import json
import math
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    ConfigurationError,
    ServiceBackpressure,
    ServiceDraining,
    ServiceError,
    SnapshotError,
)
from repro.obs import MetricsRegistry
from repro.scheduler.arrivals import SubmissionQueue
from repro.service.log import (
    OP_CLOSE,
    OP_SUBMIT,
    LogEntry,
    SubmissionLog,
)
from repro.service.spec import JobSpec
from repro.snapshot import (
    SimRecipe,
    SnapshotPlan,
    build_from_recipe,
    canonical_json,
    capture_state,
    fingerprint,
    read_snapshot_doc,
    to_jsonable,
    write_snapshot_doc,
)
from repro.snapshot.store import FORMAT, VERSION

#: Service snapshot file prefix (distinct from batch ``snap-`` files).
SERVICE_SNAPSHOT_PREFIX = "svc"

#: File names inside a service data directory.
RECIPE_FILE = "recipe.json"
LOG_FILE = "submissions.log"
RESULT_FILE = "result.json"
SNAPSHOT_DIR = "snapshots"


# --------------------------------------------------------------------- replay
def apply_entry(sim, entry: LogEntry) -> None:
    """Apply one log entry to a paused simulation (the replay primitive).

    The single procedure both the live path and every replay path share:
    ``step_until(entry.t)`` then the operation.  Sharing it is what makes
    recovery byte-identical — feeds happen at identical paused states.
    """
    sim.step_until(entry.t)
    if entry.op == OP_SUBMIT:
        spec = JobSpec.from_dict(entry.spec)
        arrival = entry.t
        if spec.arrival_time is not None:
            arrival = max(arrival, spec.arrival_time)
        sim.submit_job(
            spec.build_workflow(sim.service_datasets),
            cores=spec.cores,
            arrival_time=arrival,
            priority=spec.priority,
            label=spec.label,
        )
    elif entry.op == OP_CLOSE:
        sim.scheduler.close_stream()
    else:  # pragma: no cover - entries() already validates ops
        raise ServiceError(f"unknown log op {entry.op!r}")


def replay_entries(recipe: SimRecipe, entries: List[LogEntry]):
    """Rebuild a simulation and replay ``entries`` onto it.

    Returns the paused simulation; the stream is still open unless the
    log ends with a close op.
    """
    sim = build_from_recipe(recipe)
    sim.step_until(0.0)
    for entry in entries:
        apply_entry(sim, entry)
    return sim


def replay_result(recipe: SimRecipe, entries: List[LogEntry]):
    """The uninterrupted-reference result of a (closed) log.

    Replays every entry offline and runs the simulation to completion.
    This is what a service that never crashed would have produced — the
    crash-recovery tests compare the recovered service's canonical result
    bytes against this.
    """
    sim = replay_entries(recipe, entries)
    if not sim.scheduler._stream_closed:
        sim.scheduler.close_stream()
    return sim.run()


def canonical_result(result) -> str:
    """Canonical JSON of a simulation result (nondeterminism excluded).

    ``wallclock_time`` and the observer are dropped by the canonical
    encoder, so two runs that simulated identical histories produce
    byte-identical strings.
    """
    return canonical_json(to_jsonable(result))


# -------------------------------------------------------------------- service
class SimulationService:
    """A supervised, crash-recoverable streaming simulation worker.

    Parameters
    ----------
    data_dir:
        Durable state: the recipe, the submission log, snapshots and the
        final result all live here.  A service re-opened on an existing
        directory recovers from it.
    recipe:
        Build recipe of the base simulation.  Required on first open
        (persisted to ``recipe.json``); on re-open it must be omitted or
        equal to the persisted one.
    snapshot_plan:
        Periodic checkpointing plan (simulated-time boundaries anchored
        at t=0).  ``None`` disables periodic snapshots (crash recovery
        then replays the full log).
    queue_capacity:
        Admission queue bound — the backpressure contract.
    request_timeout:
        Default seconds a :meth:`submit` caller waits for its ack.
    verify:
        Verify snapshot fingerprints on recovery (skipping unverifiable
        snapshots).
    advance_slice:
        Wall-clock budget in seconds of one DES advance burst; keeps the
        worker responsive to new submissions.
    """

    def __init__(self, data_dir: Union[str, Path], *,
                 recipe: Optional[SimRecipe] = None,
                 snapshot_plan: Optional[SnapshotPlan] = None,
                 queue_capacity: int = 64,
                 request_timeout: float = 30.0,
                 verify: bool = True,
                 advance_slice: float = 0.05,
                 poll_interval: float = 0.05):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir = self.data_dir / SNAPSHOT_DIR
        self.snapshot_dir.mkdir(exist_ok=True)
        self.recipe = self._load_or_persist_recipe(recipe)
        self.plan = snapshot_plan
        self.request_timeout = float(request_timeout)
        self.verify = bool(verify)
        self.advance_slice = float(advance_slice)
        self.poll_interval = float(poll_interval)

        self.log = SubmissionLog(self.data_dir / LOG_FILE)
        self.queue = SubmissionQueue(queue_capacity)
        self.registry = MetricsRegistry()

        #: Guards the simulation and all bookkeeping below.
        self._lock = threading.RLock()
        self._sim = None
        self._frontier = 0.0
        self._next_seq = 0
        self._closed = False
        self._tokens: Dict[str, Dict[str, Any]] = {}
        self._labels: set = set()
        self._snap_index = 0
        self._snap_paths: List[Path] = []
        self._boundaries = None
        self._next_boundary: Optional[float] = None
        self._recovered_from: Optional[Path] = None

        self._drain_requested = threading.Event()
        self._drained = threading.Event()
        self._result = None
        self._crashed: Optional[BaseException] = None
        self._worker: Optional[threading.Thread] = None

    # ----------------------------------------------------------- construction
    def _load_or_persist_recipe(self,
                                recipe: Optional[SimRecipe]) -> SimRecipe:
        recipe_path = self.data_dir / RECIPE_FILE
        if recipe_path.exists():
            persisted = SimRecipe.decode(
                json.loads(recipe_path.read_text(encoding="utf-8"))
            )
            if recipe is not None and recipe.encoded() != persisted.encoded():
                raise ConfigurationError(
                    f"data dir {self.data_dir} was created with a different "
                    "recipe; omit recipe= to recover it, or use a fresh "
                    "directory"
                )
            return persisted
        if recipe is None:
            raise ConfigurationError(
                f"no recipe persisted in {self.data_dir}; pass recipe= on "
                "first open"
            )
        tmp = recipe_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(recipe.encoded(), sort_keys=True, indent=2),
                       encoding="utf-8")
        tmp.replace(recipe_path)
        return recipe

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "SimulationService":
        """Recover durable state and start the worker thread."""
        with self._lock:
            if self._worker is not None:
                raise ServiceError("the service has already been started")
            self._recover()
            self._worker = threading.Thread(
                target=self._serve_forever, name="sim-service-worker",
                daemon=True,
            )
            self._worker.start()
        return self

    def _recover(self) -> None:
        entries = self.log.entries()
        sim = None
        skip_seq = 0
        snapshots = sorted(
            self.snapshot_dir.glob(f"{SERVICE_SNAPSHOT_PREFIX}-*.json"),
            reverse=True,
        )
        if snapshots:
            self._snap_paths = sorted(snapshots)
            self._snap_index = max(
                int(path.stem.split("-")[-1]) for path in snapshots
            )
        for path in snapshots:
            try:
                sim, skip_seq = self._restore_snapshot(path, entries)
            except (SnapshotError, ValueError, KeyError, OSError):
                continue
            self._recovered_from = path
            break
        if sim is None:
            sim = replay_entries(self.recipe, entries)
        else:
            for entry in entries[skip_seq:]:
                apply_entry(sim, entry)
        if entries or snapshots:
            self.registry.counter("service.recoveries").inc()

        self._sim = sim
        self._next_seq = len(entries)
        self._frontier = max(
            [sim.env.now] + [entry.t for entry in entries]
        )
        self._closed = bool(entries) and entries[-1].op == OP_CLOSE
        for entry in entries:
            if entry.op != OP_SUBMIT:
                continue
            ack = {"seq": entry.seq, "label": entry.spec["label"],
                   "t": entry.t}
            if entry.token is not None:
                self._tokens[entry.token] = ack
            self._labels.add(entry.spec["label"])
        if self.plan is not None:
            self._boundaries = self.plan.boundaries()
            self._next_boundary = next(self._boundaries)
            while self._next_boundary <= sim.env.now:
                self._next_boundary = next(self._boundaries)
        if self._closed:
            # The previous lifetime was already draining; finish its
            # drain now so /result becomes available.
            self._finish_drain()

    def _restore_snapshot(self, path: Path,
                          entries: List[LogEntry]) -> Tuple[object, int]:
        """Restore one service snapshot; raises if unusable."""
        doc = read_snapshot_doc(path)
        meta = doc.get("service")
        if not isinstance(meta, dict):
            raise SnapshotError(f"{path} is not a service snapshot")
        applied = int(meta["applied_seq"])
        if applied > len(entries):
            raise SnapshotError(
                f"{path} covers {applied} log entries but only "
                f"{len(entries)} are durable"
            )
        sim = build_from_recipe(SimRecipe.decode(doc))
        sim.step_until(0.0)
        for entry in entries[:applied]:
            apply_entry(sim, entry)
        sim.step_until(doc["t"])
        if self.verify:
            replayed = fingerprint(to_jsonable(capture_state(sim)))
            if replayed != doc["fingerprint"]:
                raise SnapshotError(
                    f"snapshot {path} failed fingerprint verification"
                )
        return sim, applied

    def stop(self, *, timeout: Optional[float] = None) -> None:
        """Request a graceful drain and wait for the worker to finish."""
        self.request_drain()
        self.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the worker thread; re-raises a worker crash."""
        worker = self._worker
        if worker is not None:
            worker.join(timeout)
        if self._crashed is not None:
            raise self._crashed

    # ------------------------------------------------------------- client api
    def submit(self, spec: Dict[str, Any], *,
               token: Optional[str] = None,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit one job; blocks until the ack is durable.

        Returns the ack dict ``{"seq", "label", "t"}`` (plus
        ``"duplicate": True`` when ``token`` was already acknowledged —
        idempotent retries).  Raises :class:`ServiceBackpressure` when
        the admission queue is full, :class:`ServiceDraining` once a
        drain started, and :class:`ConfigurationError` for invalid specs.
        """
        with self._lock:
            if self._crashed is not None:
                raise ServiceError(
                    f"the service worker crashed: {self._crashed!r}"
                )
            if self._drain_requested.is_set() or self._closed:
                raise ServiceDraining(
                    "the service is draining; no new submissions accepted"
                )
            if token is not None and token in self._tokens:
                self.registry.counter("service.submissions_duplicate").inc()
                return {**self._tokens[token], "duplicate": True}
        future: Future = Future()
        if not self.queue.offer((token, spec, future)):
            self.registry.counter("service.submissions_rejected").inc()
            raise ServiceBackpressure(
                f"admission queue is full ({self.queue.capacity} pending); "
                "retry later",
                retry_after=max(1.0, self.queue.capacity * 0.01),
            )
        return future.result(timeout if timeout is not None
                             else self.request_timeout)

    def request_drain(self) -> None:
        """Ask the worker to drain: finish accepted jobs, snapshot, stop."""
        self._drain_requested.set()

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Drain and wait for completion; returns the final summary."""
        self.request_drain()
        if not self._drained.wait(timeout):
            raise ServiceError("drain did not complete within the timeout")
        if self._crashed is not None:
            raise ServiceError(f"the service worker crashed: {self._crashed!r}")
        return self.summary()

    def snapshot_now(self) -> Dict[str, Any]:
        """Take an out-of-band snapshot; returns its metadata."""
        with self._lock:
            self._require_live()
            path = self._write_snapshot()
            return {"path": str(path), "t": self._sim.env.now,
                    "applied_seq": self._next_seq}

    def job_status(self, label: str) -> Dict[str, Any]:
        """The lifecycle state of one submitted job."""
        with self._lock:
            if label not in self._labels:
                raise KeyError(label)
            scheduler = self._sim.scheduler
            for record in scheduler.records:
                if record.label == label:
                    return {
                        "label": label, "state": "completed",
                        "node": record.node,
                        "start_time": record.start_time,
                        "end_time": record.end_time,
                        "wait_time": max(
                            0.0, record.start_time - record.arrival_time
                        ),
                    }
            for job in scheduler.jobs:
                if job.label != label:
                    continue
                if job.id in scheduler._running_procs:
                    state = "running"
                elif job in scheduler.queue:
                    state = "queued"
                else:
                    state = "scheduled"
                return {"label": label, "state": state,
                        "node": job.node_name,
                        "arrival_time": job.arrival_time}
            return {"label": label, "state": "accepted"}

    def metrics(self) -> Dict[str, Any]:
        """Service + simulation metrics (the ``repro.obs`` registry view)."""
        with self._lock:
            registry = self.registry.as_dict()
            sim = self._sim
            scheduler = sim.scheduler if sim is not None else None
            return {
                "service": registry,
                "queue": {
                    "depth": len(self.queue),
                    "capacity": self.queue.capacity,
                    "accepted": self.queue.n_accepted,
                    "rejected": self.queue.n_rejected,
                },
                "sim": {
                    "now": sim.env.now if sim is not None else 0.0,
                    "frontier": self._frontier,
                    "submitted": self._next_seq,
                    "completed": (
                        len(scheduler.records) if scheduler is not None else 0
                    ),
                    "running": (
                        len(scheduler._running_procs)
                        if scheduler is not None else 0
                    ),
                    "queued": (
                        len(scheduler.queue) if scheduler is not None else 0
                    ),
                    "closed": self._closed,
                    "drained": self._drained.is_set(),
                },
            }

    def health(self) -> Dict[str, Any]:
        """Liveness: ok / draining / drained / crashed."""
        if self._crashed is not None:
            status = "crashed"
        elif self._drained.is_set():
            status = "drained"
        elif self._drain_requested.is_set():
            status = "draining"
        else:
            status = "ok"
        return {"status": status,
                "recovered_from": (
                    str(self._recovered_from) if self._recovered_from else None
                )}

    @property
    def ready(self) -> bool:
        """Whether the service currently accepts submissions."""
        return (self._crashed is None and not self._closed
                and not self._drain_requested.is_set()
                and self._worker is not None)

    @property
    def result(self):
        """The final :class:`SimulationResult` (``None`` until drained)."""
        return self._result

    def canonical_result(self) -> str:
        """Canonical result JSON; raises until the service has drained."""
        with self._lock:
            if self._result is None:
                raise ServiceError(
                    "no result yet: the service has not drained"
                )
            return canonical_result(self._result)

    def summary(self) -> Dict[str, Any]:
        """Small JSON summary of the drained run."""
        with self._lock:
            if self._result is None:
                raise ServiceError("no result yet: the service has not drained")
            metrics = self._result.scheduler
            return {
                "jobs_submitted": sum(
                    1 for e in self.log.entries() if e.op == OP_SUBMIT
                ),
                "jobs_completed": metrics.n_jobs if metrics else 0,
                "makespan": metrics.makespan if metrics else 0.0,
                "cache_hit_ratio": self._result.read_cache_hit_ratio(),
                "result_file": str(self.data_dir / RESULT_FILE),
            }

    def _require_live(self) -> None:
        if self._sim is None:
            raise ServiceError("the service has not been started")
        if self._drained.is_set():
            raise ServiceError("the service has already drained")

    # ------------------------------------------------------------ worker loop
    def _serve_forever(self) -> None:
        try:
            while True:
                items = self.queue.drain(timeout=self.poll_interval)
                with self._lock:
                    for token, spec, future in items:
                        self._admit(token, spec, future)
                    if self._drain_requested.is_set() or self._closed:
                        if not self._closed:
                            self._log_close()
                        self._finish_drain()
                        self._fail_pending()
                        return
                    self._advance(self.advance_slice)
        except BaseException as exc:  # noqa: BLE001 - reported to clients
            self._crashed = exc
            self._drained.set()
            self._fail_pending()

    def _fail_pending(self) -> None:
        """Reject submissions still queued after the worker stopped."""
        for _token, _spec, future in self.queue.drain(timeout=0):
            try:
                future.set_exception(ServiceDraining(
                    "the service stopped before admitting this submission"
                ))
            except Exception:  # pragma: no cover - future already resolved
                pass

    def _admit(self, token: Optional[str], spec_dict: Dict[str, Any],
               future: Future) -> None:
        """Validate, durably log, then inject one submission (lock held)."""
        try:
            if token is not None and token in self._tokens:
                self.registry.counter("service.submissions_duplicate").inc()
                future.set_result({**self._tokens[token], "duplicate": True})
                return
            if self._closed or self._drain_requested.is_set():
                raise ServiceDraining(
                    "the service is draining; no new submissions accepted"
                )
            seq = self._next_seq
            spec = JobSpec.from_dict(spec_dict, default_label=f"job{seq}")
            scheduler = self._sim.scheduler
            spec.validate(
                n_datasets=len(self._sim.service_datasets),
                max_cores=max(n.total_cores for n in scheduler.nodes),
            )
            if spec.label in self._labels:
                raise ConfigurationError(
                    f"a job labelled {spec.label!r} was already submitted; "
                    "labels must be unique (use a token for safe retries)"
                )
            t = max(self._frontier, self._sim.env.now)
            entry = self.log.append(LogEntry(
                seq=seq, op=OP_SUBMIT, t=t, token=token,
                spec=spec.as_dict(),
            ))
            # Durable from here: the ack below survives any crash.
            apply_entry(self._sim, entry)
            self._frontier = t
            self._next_seq = seq + 1
            self._labels.add(spec.label)
            ack = {"seq": seq, "label": spec.label, "t": t}
            if token is not None:
                self._tokens[token] = ack
            self.registry.counter("service.submissions_accepted").inc()
            future.set_result(ack)
        except BaseException as exc:  # noqa: BLE001 - delivered to the client
            future.set_exception(exc)

    def _log_close(self) -> None:
        t = max(self._frontier, self._sim.env.now)
        entry = self.log.append(LogEntry(seq=self._next_seq, op=OP_CLOSE, t=t))
        apply_entry(self._sim, entry)
        self._frontier = t
        self._next_seq += 1
        self._closed = True

    def _outstanding_work(self) -> bool:
        """Whether any accepted job is still pending/queued/running."""
        scheduler = self._sim.scheduler
        return bool(scheduler._running_procs or scheduler.queue
                    or scheduler._stream_arrivals)

    def _advance(self, wall_budget: float) -> None:
        """Advance the DES within a wall-clock budget, snapshotting at
        plan boundaries (lock held).

        Only advances while accepted jobs are outstanding: an idle open
        stream parks the simulated clock instead of racing it through
        background-flusher ticks (and pointless snapshots) forever.
        """
        sim = self._sim
        env = sim.env
        deadline = time.perf_counter() + wall_budget
        while time.perf_counter() < deadline:
            if not self._outstanding_work():
                return
            peek = env.peek()
            if math.isinf(peek):
                return
            boundary = self._next_boundary
            if boundary is not None and boundary <= peek:
                sim.step_until(boundary)
                self._write_snapshot()
                self._next_boundary = next(self._boundaries)
                continue
            target = boundary if boundary is not None else peek + 1.0
            sim.step_until(min(target, peek + 1.0))

    def _write_snapshot(self) -> Path:
        """One service snapshot: a batch snapshot doc plus service meta."""
        sim = self._sim
        state = to_jsonable(capture_state(sim))
        doc = {
            "format": FORMAT,
            "version": VERSION,
            "t": sim.env.now,
            "experiment": self.recipe.experiment,
            "params": self.recipe.encoded()["params"],
            "fingerprint": fingerprint(state),
            "state": state,
            "service": {
                "applied_seq": self._next_seq,
                "frontier": self._frontier,
                "closed": self._closed,
            },
        }
        self._snap_index += 1
        path = self.snapshot_dir / (
            f"{SERVICE_SNAPSHOT_PREFIX}-{self._snap_index:08d}.json"
        )
        write_snapshot_doc(doc, path)
        self._snap_paths.append(path)
        keep = self.plan.keep if self.plan is not None else 2
        while len(self._snap_paths) > keep:
            stale = self._snap_paths.pop(0)
            try:
                stale.unlink()
            except OSError:
                pass
        self.registry.counter("service.snapshots_written").inc()
        return path

    def _finish_drain(self) -> None:
        """Run the closed stream to completion, snapshot, finalize."""
        if self._drained.is_set():
            return
        sim = self._sim
        sim.step_until(math.inf)
        self._write_snapshot()
        self._result = sim.run()
        text = canonical_result(self._result)
        tmp = self.data_dir / (RESULT_FILE + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(self.data_dir / RESULT_FILE)
        self.log.close()
        self._drained.set()
