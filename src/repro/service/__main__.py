"""Command-line entry point: ``python -m repro.service``.

Serves a streaming simulation cluster over HTTP, either directly (one
process, exits on drain or crash) or under supervision
(``--supervise``: restart-on-crash with snapshot + log recovery).
"""

from __future__ import annotations

import argparse
import sys

from repro.service.supervisor import ServiceConfig, Supervisor, worker_main
from repro.snapshot import SimRecipe, SnapshotPlan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a streaming cluster simulation over HTTP/JSON.",
    )
    parser.add_argument("--data-dir", required=True,
                        help="durable state directory (log, snapshots, "
                             "recipe, result)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8754,
                        help="HTTP port (0 picks a free one; the bound "
                             "port is written to <data-dir>/http.port)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="compute nodes of the simulated cluster")
    parser.add_argument("--cores-per-node", type=int, default=8)
    parser.add_argument("--datasets", type=int, default=8,
                        help="shared input datasets staged on every node")
    parser.add_argument("--policy", default="fifo")
    parser.add_argument("--placement", default="cache")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission queue bound (backpressure beyond it)")
    parser.add_argument("--snapshot-interval", type=float, default=2.0,
                        help="simulated seconds between periodic snapshots "
                             "(0 disables)")
    parser.add_argument("--snapshot-keep", type=int, default=3)
    parser.add_argument("--supervise", action="store_true",
                        help="run under the restart-on-crash supervisor")
    parser.add_argument("--max-restarts", type=int, default=5)
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    plan = None
    if args.snapshot_interval > 0:
        plan = SnapshotPlan.fixed(args.snapshot_interval,
                                  keep=max(1, args.snapshot_keep))
    recipe = SimRecipe("service-cluster", dict(
        n_nodes=args.nodes,
        cores_per_node=args.cores_per_node,
        n_datasets=args.datasets,
        policy=args.policy,
        placement=args.placement,
    ))
    return ServiceConfig(
        data_dir=args.data_dir,
        recipe=recipe,
        host=args.host,
        port=args.port,
        snapshot_plan=plan,
        queue_capacity=args.queue_limit,
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    if args.supervise:
        supervisor = Supervisor(config, max_restarts=args.max_restarts)
        supervisor.start()
        print(f"serving on {config.host}:{supervisor.port()} "
              f"(data dir {config.data_dir}, pid {supervisor.pid})",
              flush=True)
        supervisor.wait()
        return 1 if supervisor.gave_up else 0
    worker_main(config)
    return 0


if __name__ == "__main__":
    sys.exit(main())
