"""Fair-sharing flow model for contended devices.

A :class:`FairShareChannel` represents a device (disk head, memory bus,
network link) with a nominal bandwidth ``B``.  When ``n`` transfers are in
flight simultaneously, each progresses at ``B / n`` (progressive filling /
max-min fairness with a single bottleneck), which is the macroscopic model
SimGrid uses for storage and network resources and the one the paper relies
on for simulating concurrent applications.

The channel recomputes the remaining work of every active flow whenever a
flow starts or completes, and schedules a single "next completion" waker
process.  The cost of the model is therefore proportional to the number of
flow arrivals/departures, not to the amount of data transferred.

A channel can also be configured with ``sharing=False``, in which case each
transfer proceeds at the full bandwidth regardless of contention.  This
degenerate mode reproduces the paper's standalone Python prototype, which
"does not simulate bandwidth sharing and thus does not support concurrency".
"""

from __future__ import annotations

from typing import List, Optional

from repro.des.environment import Environment
from repro.des.events import Event, Timeout, URGENT
from repro.errors import ConfigurationError, FlowAborted

#: Tolerance below which a flow is considered complete (bytes).
_EPSILON = 1e-6


class Flow:
    """A single transfer in progress on a :class:`FairShareChannel`."""

    __slots__ = ("amount", "remaining", "event", "start_time", "label")

    def __init__(self, amount: float, event: Event, start_time: float,
                 label: Optional[str] = None):
        self.amount = float(amount)
        self.remaining = float(amount)
        self.event = event
        self.start_time = start_time
        self.label = label

    @property
    def progress(self) -> float:
        """Fraction of the transfer completed, in ``[0, 1]``."""
        if self.amount == 0:
            return 1.0
        return 1.0 - self.remaining / self.amount

    def __repr__(self) -> str:
        return (
            f"<Flow {self.label or ''} {self.amount - self.remaining:.0f}/"
            f"{self.amount:.0f} bytes>"
        )


class FairShareChannel:
    """A bandwidth-limited channel shared fairly among concurrent flows.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth:
        Nominal bandwidth in bytes per second.  Must be positive.
    name:
        Human-readable name used in ``repr`` and statistics.
    sharing:
        If ``True`` (default), the bandwidth is divided equally among active
        flows.  If ``False``, every flow progresses at the full bandwidth
        (contention-oblivious mode used by the single-threaded prototype).
    """

    def __init__(self, env: Environment, bandwidth: float,
                 name: str = "channel", sharing: bool = True):
        if bandwidth <= 0:
            raise ConfigurationError(
                f"channel {name!r} requires a positive bandwidth, got {bandwidth}"
            )
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        self.sharing = sharing
        self._flows: List[Flow] = []
        self._last_update = env.now
        #: The pending next-completion timeout, if any.  Arrivals and
        #: departures cancel it (tombstone, O(1)) and schedule a fresh one
        #: instead of spawning a waker process per reschedule.
        self._waker_timeout: Optional[Timeout] = None
        #: Set while a same-instant reschedule sentinel is queued: a burst
        #: of arrivals in one event cascade (concurrent applications
        #: issuing chunk I/O at the same simulated time) computes the next
        #: completion once, at the end of the cascade, instead of once per
        #: arrival.
        self._resched_queued = False
        # Statistics
        self.total_transferred = 0.0
        self.total_flows = 0
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0
        #: Telemetry track of this channel's flow spans (precomputed:
        #: completions are the hottest instrumented path).
        self._obs_track = f"flow:{name}"

    # ----------------------------------------------------------------- state
    @property
    def active_flows(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._flows)

    @property
    def rate_per_flow(self) -> float:
        """Bandwidth currently granted to each active flow."""
        if not self._flows:
            return self.bandwidth
        if not self.sharing:
            return self.bandwidth
        return self.bandwidth / len(self._flows)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the channel had at least one active flow."""
        end = self.env.now if horizon is None else horizon
        busy = self.busy_time
        if self._busy_since is not None:
            busy += max(0.0, end - self._busy_since)
        if end <= 0:
            return 0.0
        return min(1.0, busy / end)

    # ------------------------------------------------------------------- api
    def transfer(self, amount: float, label: Optional[str] = None) -> Event:
        """Start a transfer of ``amount`` bytes.

        Returns an event that succeeds (with the elapsed transfer time) once
        the transfer completes.  Zero-sized transfers complete immediately.
        """
        if amount < 0:
            raise ValueError(f"cannot transfer a negative amount ({amount})")
        env = self.env
        done = Event(env)
        if amount <= _EPSILON:
            done.succeed(0.0)
            return done

        self._update_progress()
        now = env._now
        flow = Flow(amount, done, now, label=label)
        if self._busy_since is None:
            self._busy_since = now
        self._flows.append(flow)
        self.total_flows += 1
        # Defer the reschedule to the end of the current event cascade: a
        # sentinel event at the same instant (urgent priority, zero
        # delay) fires after every same-time arrival has been added, so a
        # burst of n concurrent transfers costs one completion scan and
        # one waker timeout instead of n.  No simulated time can pass
        # before the sentinel runs.
        if not self._resched_queued:
            self._resched_queued = True
            waker = self._waker_timeout
            if waker is not None:
                waker._defunct = True
                self._waker_timeout = None
            sentinel = Event(env)
            sentinel._ok = True
            sentinel.callbacks.append(self._on_deferred_reschedule)
            env.schedule(sentinel, priority=URGENT)
        return done

    def _on_deferred_reschedule(self, _event: Event) -> None:
        self._resched_queued = False
        self._reschedule()

    def abort_all(self, reason: Optional[str] = None) -> int:
        """Abort every in-flight transfer (device crash); return the count.

        Progress up to the abort instant is accounted, then each flow's
        completion event *fails* with :class:`~repro.errors.FlowAborted`.
        The events are pre-defused: a waiter that was interrupted away
        (the crashed node's tasks are preempted separately) leaves an
        orphaned event behind, and a defused failure is simply discarded
        by the event loop instead of crashing the simulation.  Waiters
        that are still attached — e.g. the background flusher writing
        through the crashed disk — get the exception thrown in and are
        expected to handle it.

        The channel itself stays usable: transfers started after the
        abort (the node restarted) proceed normally.
        """
        flows = self._flows
        if not flows:
            return 0
        self._update_progress()
        self._flows = []
        name = self.name if reason is None else f"{self.name} ({reason})"
        for flow in flows:
            event = flow.event
            event.defused = True
            event.fail(FlowAborted(
                f"transfer {flow.label or 'unnamed'} aborted on channel "
                f"{name}: {flow.remaining:.0f} of {flow.amount:.0f} bytes "
                "were still in flight"
            ))
        if self._busy_since is not None:
            self.busy_time += self.env._now - self._busy_since
            self._busy_since = None
        waker = self._waker_timeout
        if waker is not None:
            waker._defunct = True
            self._waker_timeout = None
        return len(flows)

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the channel's nominal bandwidth (straggling device).

        In-flight flows keep the bytes they already transferred at the old
        rate (progress is settled first) and continue at the new rate; the
        pending completion wake-up is recomputed.  Setting the current
        bandwidth again is a no-op.
        """
        if bandwidth <= 0:
            raise ConfigurationError(
                f"channel {self.name!r} requires a positive bandwidth, "
                f"got {bandwidth}"
            )
        if bandwidth == self.bandwidth:
            return
        self._update_progress()
        self.bandwidth = float(bandwidth)
        self._reschedule()

    def estimate_time(self, amount: float) -> float:
        """Time the transfer would take with the *current* contention level.

        This is an instantaneous estimate used by tests and reporting only;
        the actual transfer time depends on future arrivals and departures.
        """
        flows = len(self._flows) + 1
        rate = self.bandwidth if not self.sharing else self.bandwidth / flows
        return amount / rate

    # ------------------------------------------------------------- internals
    def _update_progress(self) -> None:
        now = self.env._now
        elapsed = now - self._last_update
        flows = self._flows
        if elapsed > 0 and flows:
            # Inline rate_per_flow: the same division, without the
            # property call on every progress update.
            rate = self.bandwidth
            if self.sharing:
                rate = rate / len(flows)
            quantum = rate * elapsed
            transferred = self.total_transferred
            for flow in flows:
                done_amount = flow.remaining
                if quantum < done_amount:
                    done_amount = quantum
                flow.remaining -= done_amount
                transferred += done_amount
            self.total_transferred = transferred
        self._last_update = now

    def _complete_finished_flows(self) -> None:
        flows = self._flows
        finished = []
        kept = []
        for flow in flows:
            if flow.remaining <= _EPSILON:
                finished.append(flow)
            else:
                kept.append(flow)
        if finished:
            self._flows = kept
            now = self.env._now
            observer = self.env.observer
            for flow in finished:
                flow.remaining = 0.0
                flow.event.succeed(now - flow.start_time)
                if observer is not None:
                    observer.complete(
                        flow.label or "transfer", "flow",
                        self._obs_track, flow.start_time, now,
                        attrs={"bytes": flow.amount},
                    )
        if not self._flows and self._busy_since is not None:
            self.busy_time += self.env._now - self._busy_since
            self._busy_since = None

    def _reschedule(self) -> None:
        # The completion set changed: the pending wake-up (if any) is
        # stale.  Tombstone it instead of letting a dead waker process
        # resume just to find out its version expired.
        waker = self._waker_timeout
        if waker is not None:
            waker._defunct = True
            self._waker_timeout = None
        env = self.env
        bandwidth = self.bandwidth
        sharing = self.sharing
        while True:
            flows = self._flows
            if not flows:
                return
            rate = bandwidth / len(flows) if sharing else bandwidth
            # min(remaining) / rate == min(remaining / rate): division by a
            # positive rate is monotone, and the winning quotient is the
            # same float either way.
            smallest_remaining = flows[0].remaining
            for flow in flows:
                if flow.remaining < smallest_remaining:
                    smallest_remaining = flow.remaining
            next_completion = smallest_remaining / rate
            now = env._now
            if now + next_completion > now:
                # A bare timeout with a callback: no waker process, no
                # Initialize/termination events — one queue entry per wake.
                timeout = Timeout(env, next_completion)
                timeout.callbacks.append(self._on_wake)
                self._waker_timeout = timeout
                return
            # The residual work is so small that its completion time is not
            # representable at the current simulated time: finish the
            # smallest flows immediately instead of spinning on zero-length
            # timeouts (floating-point underflow guard).
            for flow in list(self._flows):
                if flow.remaining <= smallest_remaining + _EPSILON:
                    self.total_transferred += flow.remaining
                    flow.remaining = 0.0
            self._complete_finished_flows()

    def _on_wake(self, _event: Event) -> None:
        self._waker_timeout = None
        self._update_progress()
        self._complete_finished_flows()
        self._reschedule()

    def __repr__(self) -> str:
        return (
            f"<FairShareChannel {self.name!r} bw={self.bandwidth:.3g} B/s "
            f"flows={len(self._flows)} sharing={self.sharing}>"
        )
