"""Network links and routes.

The NFS experiments of the paper move data between a compute node and a
storage node over a 25 Gbps network.  We model a network as a set of named
:class:`Link` objects (fair-sharing channels with latency) and
:class:`Route` objects connecting pairs of hosts.

Multi-link routes are simulated with a *bottleneck* approximation: a
transfer occupies the slowest link of the route (fair-shared with other
transfers using that link) and pays the sum of all link latencies.  For the
single-switch cluster topologies studied in the paper this is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.des.environment import Environment
from repro.des.events import Event
from repro.errors import ConfigurationError
from repro.platform.flows import FairShareChannel
from repro.units import format_size


class Link:
    """A network link with a bandwidth and a latency."""

    def __init__(self, env: Environment, name: str, bandwidth: float,
                 latency: float = 0.0, sharing: bool = True):
        if bandwidth <= 0:
            raise ConfigurationError(f"link {name!r}: bandwidth must be positive")
        if latency < 0:
            raise ConfigurationError(f"link {name!r}: latency must be >= 0")
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.channel = FairShareChannel(env, bandwidth, name=name, sharing=sharing)
        self.bytes_transferred = 0.0

    def transfer(self, amount: float, label: Optional[str] = None) -> Event:
        """Transfer ``amount`` bytes over this link (latency + bandwidth)."""
        self.bytes_transferred += amount
        if self.latency > 0:
            return self.env.process(self._transfer(amount, label),
                                    name=f"{self.name}-xfer")
        return self.channel.transfer(amount, label=label)

    def _transfer(self, amount: float, label: Optional[str]):
        yield self.env.timeout(self.latency)
        elapsed = yield self.channel.transfer(amount, label=label)
        return self.latency + elapsed

    def __repr__(self) -> str:
        return (
            f"<Link {self.name!r} bw={format_size(self.bandwidth)}/s "
            f"lat={self.latency * 1e3:.3f} ms>"
        )


class Route:
    """An ordered sequence of links between two hosts."""

    def __init__(self, src: str, dst: str, links: List[Link]):
        if not links:
            raise ConfigurationError(f"route {src}->{dst} needs at least one link")
        self.src = src
        self.dst = dst
        self.links = list(links)

    @property
    def latency(self) -> float:
        """Sum of the latencies of all links on the route."""
        return sum(link.latency for link in self.links)

    @property
    def bottleneck(self) -> Link:
        """The slowest link of the route."""
        return min(self.links, key=lambda link: link.bandwidth)

    def __repr__(self) -> str:
        names = "->".join(link.name for link in self.links)
        return f"<Route {self.src}->{self.dst} via {names}>"


class Network:
    """Registry of links and host-to-host routes.

    Routes are symmetric by default: registering a route from ``a`` to ``b``
    also registers the reverse route unless ``symmetric=False``.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.links: Dict[str, Link] = {}
        self._routes: Dict[Tuple[str, str], Route] = {}

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 sharing: bool = True) -> Link:
        """Create and register a link."""
        if name in self.links:
            raise ConfigurationError(f"duplicate link name {name!r}")
        link = Link(self.env, name, bandwidth, latency, sharing=sharing)
        self.links[name] = link
        return link

    def add_route(self, src: str, dst: str, links: List[Link],
                  symmetric: bool = True) -> Route:
        """Register a route between two hosts."""
        route = Route(src, dst, links)
        self._routes[(src, dst)] = route
        if symmetric:
            self._routes[(dst, src)] = Route(dst, src, list(reversed(links)))
        return route

    def route(self, src: str, dst: str) -> Route:
        """Return the registered route from ``src`` to ``dst``."""
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no route registered from {src!r} to {dst!r}") from None

    def has_route(self, src: str, dst: str) -> bool:
        """True if a route from ``src`` to ``dst`` exists."""
        return (src, dst) in self._routes

    def transfer(self, src: str, dst: str, amount: float,
                 label: Optional[str] = None) -> Event:
        """Transfer ``amount`` bytes from ``src`` to ``dst``.

        Local transfers (``src == dst``) complete immediately.
        """
        done_now = Event(self.env)
        if src == dst or amount <= 0:
            done_now.succeed(0.0)
            return done_now
        route = self.route(src, dst)
        return self.env.process(self._transfer(route, amount, label),
                                name=f"net-{src}-{dst}")

    def _transfer(self, route: Route, amount: float, label: Optional[str]):
        if route.latency > 0:
            yield self.env.timeout(route.latency)
        elapsed = yield route.bottleneck.channel.transfer(amount, label=label)
        return route.latency + elapsed
