"""Platform description and builder.

A :class:`Platform` is the set of hosts and the network connecting them.
The :class:`PlatformBuilder` offers a fluent API for constructing platforms
programmatically, and :func:`concordia_cluster` builds the dedicated
cluster used in the paper's experiments (compute nodes with 2 x 16 cores,
250 GiB of RAM, local SSDs, and NFS storage served by another node over a
25 Gbps network).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.platform.host import Host
from repro.platform.memory import MemoryDevice
from repro.platform.network import Link, Network
from repro.platform.storage import Disk
from repro.units import GiB, GB, MBps


class Platform:
    """A collection of hosts plus the network connecting them."""

    def __init__(self, env: Environment):
        self.env = env
        self.hosts: Dict[str, Host] = {}
        self.network = Network(env)

    def add_host(self, host: Host) -> Host:
        """Register a host on the platform."""
        if host.name in self.hosts:
            raise ConfigurationError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        """Return the host registered under ``name``."""
        try:
            return self.hosts[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown host {name!r}; known hosts: {sorted(self.hosts)}"
            ) from None

    def host_names(self) -> Iterable[str]:
        """Names of all registered hosts."""
        return self.hosts.keys()

    def __len__(self) -> int:
        return len(self.hosts)

    def __repr__(self) -> str:
        return f"<Platform hosts={sorted(self.hosts)}>"


class PlatformBuilder:
    """Fluent builder for :class:`Platform` objects.

    Example
    -------
    >>> from repro.des import Environment
    >>> env = Environment()
    >>> platform = (
    ...     PlatformBuilder(env)
    ...     .host("node1", cores=32, memory_size=250 * GiB,
    ...           memory_bandwidth=4812 * MBps)
    ...     .disk("node1", "ssd", bandwidth=465 * MBps, capacity=450 * GB)
    ...     .build()
    ... )
    """

    def __init__(self, env: Environment):
        self.env = env
        self._platform = Platform(env)

    def host(self, name: str, *, cores: int = 1, speed: float = 1e9,
             memory_size: float = 0.0, memory_bandwidth: Optional[float] = None,
             memory_read_bandwidth: Optional[float] = None,
             memory_write_bandwidth: Optional[float] = None,
             sharing: bool = True) -> "PlatformBuilder":
        """Add a host, optionally with a memory device."""
        host = Host(self.env, name, cores=cores, speed=speed)
        if memory_size > 0:
            read_bw = memory_read_bandwidth or memory_bandwidth
            write_bw = memory_write_bandwidth or memory_bandwidth
            if not read_bw or not write_bw:
                raise ConfigurationError(
                    f"host {name!r}: memory_size given without memory bandwidth"
                )
            host.set_memory(
                MemoryDevice(
                    self.env,
                    f"{name}.ram",
                    size=memory_size,
                    read_bandwidth=read_bw,
                    write_bandwidth=write_bw,
                    sharing=sharing,
                )
            )
        self._platform.add_host(host)
        return self

    def disk(self, host_name: str, disk_name: str, *, bandwidth: Optional[float] = None,
             read_bandwidth: Optional[float] = None,
             write_bandwidth: Optional[float] = None,
             capacity: float = float("inf"), latency: float = 0.0,
             mount_point: Optional[str] = None,
             sharing: bool = True) -> "PlatformBuilder":
        """Attach a disk to an existing host."""
        read_bw = read_bandwidth or bandwidth
        write_bw = write_bandwidth or bandwidth
        if not read_bw or not write_bw:
            raise ConfigurationError(
                f"disk {disk_name!r}: either bandwidth or both read/write bandwidths required"
            )
        host = self._platform.host(host_name)
        disk = Disk(
            self.env,
            f"{host_name}.{disk_name}",
            read_bandwidth=read_bw,
            write_bandwidth=write_bw,
            capacity=capacity,
            latency=latency,
            sharing=sharing,
            unified_channel=(read_bw == write_bw),
        )
        host.add_disk(disk, mount_point=mount_point or disk_name)
        return self

    def link(self, name: str, bandwidth: float, latency: float = 0.0) -> "PlatformBuilder":
        """Add a network link."""
        self._platform.network.add_link(name, bandwidth, latency)
        return self

    def route(self, src: str, dst: str, link_names: Iterable[str],
              symmetric: bool = True) -> "PlatformBuilder":
        """Add a route between two hosts over previously created links."""
        links = [self._require_link(name) for name in link_names]
        self._platform.network.add_route(src, dst, links, symmetric=symmetric)
        return self

    def _require_link(self, name: str) -> Link:
        try:
            return self._platform.network.links[name]
        except KeyError:
            raise ConfigurationError(f"unknown link {name!r}") from None

    def build(self) -> Platform:
        """Return the constructed platform."""
        return self._platform


def concordia_cluster(env: Environment, *, compute_nodes: int = 1,
                      cores_per_node: int = 32,
                      memory_size: float = 250 * GiB,
                      memory_bandwidth: float = 4812 * MBps,
                      memory_read_bandwidth: Optional[float] = None,
                      memory_write_bandwidth: Optional[float] = None,
                      local_disk_bandwidth: float = 465 * MBps,
                      local_disk_read_bandwidth: Optional[float] = None,
                      local_disk_write_bandwidth: Optional[float] = None,
                      local_disk_capacity: float = 450 * GB,
                      remote_disk_bandwidth: float = 445 * MBps,
                      remote_disk_read_bandwidth: Optional[float] = None,
                      remote_disk_write_bandwidth: Optional[float] = None,
                      remote_disk_capacity: float = 450 * GB,
                      network_bandwidth: float = 3000 * MBps,
                      network_latency: float = 100e-6,
                      with_nfs_server: bool = True,
                      sharing: bool = True) -> Platform:
    """Build the dedicated cluster used in the paper's experiments.

    Default bandwidths correspond to the *simulator configuration* column of
    Table III (symmetric means of the measured read/write bandwidths); pass
    the ``*_read_bandwidth`` / ``*_write_bandwidth`` keyword arguments to use
    asymmetric (measured) values instead, e.g. for the calibrated reference
    model.

    Parameters
    ----------
    compute_nodes:
        Number of compute nodes, named ``node1`` .. ``nodeN``.
    with_nfs_server:
        Whether to add the NFS storage node (``storage1``) and the network
        routes between each compute node and the storage node.
    """
    builder = PlatformBuilder(env)
    node_names = [f"node{i + 1}" for i in range(compute_nodes)]
    for name in node_names:
        builder.host(
            name,
            cores=cores_per_node,
            speed=1e9,
            memory_size=memory_size,
            memory_bandwidth=memory_bandwidth,
            memory_read_bandwidth=memory_read_bandwidth,
            memory_write_bandwidth=memory_write_bandwidth,
            sharing=sharing,
        )
        builder.disk(
            name,
            "ssd",
            bandwidth=local_disk_bandwidth,
            read_bandwidth=local_disk_read_bandwidth,
            write_bandwidth=local_disk_write_bandwidth,
            capacity=local_disk_capacity,
            mount_point="/local",
            sharing=sharing,
        )

    if with_nfs_server:
        builder.host(
            "storage1",
            cores=cores_per_node,
            speed=1e9,
            memory_size=memory_size,
            memory_bandwidth=memory_bandwidth,
            memory_read_bandwidth=memory_read_bandwidth,
            memory_write_bandwidth=memory_write_bandwidth,
            sharing=sharing,
        )
        builder.disk(
            "storage1",
            "nfs_disk",
            bandwidth=remote_disk_bandwidth,
            read_bandwidth=remote_disk_read_bandwidth,
            write_bandwidth=remote_disk_write_bandwidth,
            capacity=remote_disk_capacity,
            mount_point="/export",
            sharing=sharing,
        )
        builder.link("cluster_net", network_bandwidth, network_latency)
        for name in node_names:
            builder.route(name, "storage1", ["cluster_net"])

    return builder.build()
