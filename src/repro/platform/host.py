"""Host model: CPU + memory + local disks.

A host groups the hardware devices the higher layers need: a multi-core
CPU, a memory device (size and bandwidth) and a set of named disks.  The
page-cache machinery (Memory Manager, I/O Controller) is attached to hosts
by the simulator layer, keeping this module purely about hardware.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.platform.cpu import CPU
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import format_size


class Host:
    """A simulated machine.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Unique host name.
    cores:
        Number of CPU cores.
    speed:
        Per-core speed in flops/s.
    memory:
        The host's :class:`~repro.platform.memory.MemoryDevice`.
    """

    def __init__(self, env: Environment, name: str, *, cores: int = 1,
                 speed: float = CPU.DEFAULT_SPEED,
                 memory: Optional[MemoryDevice] = None):
        self.env = env
        self.name = name
        self.cpu = CPU(env, cores=cores, speed=speed, name=f"{name}.cpu")
        self.memory = memory
        self.disks: Dict[str, Disk] = {}
        #: Set by the simulator layer when page caching is enabled.
        self.memory_manager = None
        #: Availability flag maintained by the fault-injection layer
        #: (:mod:`repro.faults`); always ``True`` in fault-free runs.
        self.up = True

    # -------------------------------------------------------------- building
    def set_memory(self, memory: MemoryDevice) -> MemoryDevice:
        """Attach a memory device to the host."""
        self.memory = memory
        return memory

    def add_disk(self, disk: Disk, mount_point: Optional[str] = None) -> Disk:
        """Attach a disk under ``mount_point`` (defaults to the disk name)."""
        key = mount_point or disk.name
        if key in self.disks:
            raise ConfigurationError(
                f"host {self.name!r} already has a disk mounted at {key!r}"
            )
        self.disks[key] = disk
        return disk

    def disk(self, mount_point: str) -> Disk:
        """Return the disk mounted at ``mount_point``."""
        try:
            return self.disks[mount_point]
        except KeyError:
            raise ConfigurationError(
                f"host {self.name!r} has no disk mounted at {mount_point!r}; "
                f"known mount points: {sorted(self.disks)}"
            ) from None

    # -------------------------------------------------------------- liveness
    def channels(self, include_memory: bool = True) -> list:
        """The distinct transfer channels of the host's devices.

        Symmetric devices expose one channel for both directions; it is
        returned once.
        """
        channels = []
        for disk in self.disks.values():
            channels.append(disk.read_channel)
            if disk.write_channel is not disk.read_channel:
                channels.append(disk.write_channel)
        if include_memory and self.memory is not None:
            channels.append(self.memory.read_channel)
            if self.memory.write_channel is not self.memory.read_channel:
                channels.append(self.memory.write_channel)
        return channels

    def fail(self) -> int:
        """Mark the host down and abort every in-flight transfer it serves.

        Returns the number of aborted flows (see
        :meth:`~repro.platform.flows.FairShareChannel.abort_all` for the
        abort semantics).  The caller — normally the fault injector — is
        responsible for interrupting the processes that were running on
        the host and for invalidating its page cache; this method only
        flips the hardware state.
        """
        self.up = False
        aborted = 0
        for channel in self.channels():
            aborted += channel.abort_all(reason=f"host {self.name} down")
        return aborted

    def restore(self) -> None:
        """Mark the host up again (repaired / rejoined)."""
        self.up = True

    # ------------------------------------------------------------------ info
    @property
    def cores(self) -> int:
        """Number of CPU cores."""
        return self.cpu.cores

    @property
    def speed(self) -> float:
        """Per-core CPU speed in flops/s."""
        return self.cpu.speed

    @property
    def memory_size(self) -> float:
        """Physical memory size in bytes (0 if no memory device attached)."""
        return self.memory.size if self.memory is not None else 0.0

    def __repr__(self) -> str:
        mem = format_size(self.memory_size) if self.memory else "none"
        return (
            f"<Host {self.name!r} cores={self.cores} mem={mem} "
            f"disks={sorted(self.disks)}>"
        )
