"""Hardware platform models.

This subpackage reimplements the "macroscopic" resource models the paper
inherits from SimGrid [21]: devices characterised by a bandwidth and a
latency, with the bandwidth shared fairly among concurrent transfers
(progressive filling).  On top of the raw flow model it provides disks,
memory devices, network links and routes, CPUs, hosts and a platform
builder used by the higher simulation layers.
"""

from repro.platform.flows import FairShareChannel, Flow
from repro.platform.storage import StorageDevice, Disk
from repro.platform.memory import MemoryDevice
from repro.platform.network import Link, Route, Network
from repro.platform.cpu import CPU
from repro.platform.host import Host
from repro.platform.platform import Platform, PlatformBuilder, concordia_cluster

__all__ = [
    "FairShareChannel",
    "Flow",
    "StorageDevice",
    "Disk",
    "MemoryDevice",
    "Link",
    "Route",
    "Network",
    "CPU",
    "Host",
    "Platform",
    "PlatformBuilder",
    "concordia_cluster",
]
