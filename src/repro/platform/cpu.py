"""CPU / compute model.

Tasks in the paper are characterised by a measured CPU time which is
injected into the simulators as a number of flops executed on a 1 Gflops
core.  The :class:`CPU` model reproduces this: a host has ``cores``
identical cores of ``speed`` flops per second; each running task occupies
one core for ``flops / speed`` seconds, and tasks beyond the core count
queue (FIFO).
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.des.events import Event, Interrupt
from repro.des.resources import Resource
from repro.errors import ConfigurationError


class CPU:
    """A multi-core CPU with a fixed per-core speed.

    Parameters
    ----------
    env:
        Simulation environment.
    cores:
        Number of physical cores.
    speed:
        Per-core speed in flops per second (1e9 in the paper's setup).
    name:
        Device name.
    """

    #: Per-core speed used by the paper to convert CPU seconds to flops.
    DEFAULT_SPEED = 1e9

    def __init__(self, env: Environment, cores: int = 1,
                 speed: float = DEFAULT_SPEED, name: str = "cpu"):
        if cores <= 0:
            raise ConfigurationError("a CPU needs at least one core")
        if speed <= 0:
            raise ConfigurationError("CPU speed must be positive")
        self.env = env
        self.cores = int(cores)
        self.speed = float(speed)
        self.name = name
        self._core_pool = Resource(env, capacity=self.cores, name=f"{name}-cores")
        #: Cumulative statistics.
        self.total_flops = 0.0
        self.tasks_executed = 0

    @property
    def busy_cores(self) -> int:
        """Number of cores currently executing work."""
        return self._core_pool.count

    @property
    def queued_tasks(self) -> int:
        """Number of compute requests waiting for a core."""
        return len(self._core_pool.queue)

    def execute(self, flops: float, label: Optional[str] = None) -> Event:
        """Execute ``flops`` on one core; returns a completion event.

        The returned process carries (in ``Process.data``) a dict whose
        ``granted_at`` key is set the moment a core is granted, so a
        canceller can tell executed time apart from core-queueing time.
        """
        if flops < 0:
            raise ValueError("flops must be >= 0")
        info: dict = {}
        process = self.env.process(
            self._execute(flops, info), name=label or "compute"
        )
        process.data = info
        return process

    def compute_seconds(self, seconds: float, label: Optional[str] = None) -> Event:
        """Execute work lasting ``seconds`` of CPU time on one core."""
        return self.execute(seconds * self.speed, label=label)

    def duration_of(self, flops: float) -> float:
        """Uncontended duration of ``flops`` on one core."""
        return flops / self.speed

    def set_speed(self, speed: float) -> None:
        """Change the per-core speed (straggling / recovered node).

        Applies to compute segments granted a core *after* the change;
        segments already in flight finish at the speed they started with
        (their completion timeout is already scheduled).
        """
        if speed <= 0:
            raise ConfigurationError("CPU speed must be positive")
        self.speed = float(speed)

    def _execute(self, flops: float, info: Optional[dict] = None):
        # The request is released in the finally block whether it was
        # granted or still queued, so an interrupt (preemption) can never
        # leak a core or a queue slot.
        request = self._core_pool.request()
        try:
            yield request
            duration = flops / self.speed
            started = self.env.now
            if info is not None:
                info["granted_at"] = started
            if duration > 0:
                try:
                    yield self.env.timeout(duration)
                except Interrupt:
                    # Preempted mid-computation: account the flops actually
                    # executed and end cleanly (the core frees right away).
                    elapsed = self.env.now - started
                    self.total_flops += min(flops, elapsed * self.speed)
                    return elapsed
            self.total_flops += flops
            self.tasks_executed += 1
            return duration
        except Interrupt:
            # Cancelled while still waiting for a core: nothing executed.
            return 0.0
        finally:
            request.release()

    def __repr__(self) -> str:
        return f"<CPU {self.name!r} {self.cores} cores @ {self.speed:.3g} flops/s>"
