"""Memory device model.

The page cache model charges cached reads and cache writes at memory
bandwidth.  A :class:`MemoryDevice` is a bandwidth-limited device just like
a disk (reads and writes through fair-sharing channels), plus a total size
used by the :class:`~repro.pagecache.memory_manager.MemoryManager` for
capacity accounting.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.platform.storage import StorageDevice
from repro.units import format_size


class MemoryDevice(StorageDevice):
    """RAM of a host: a storage device with byte-addressable capacity.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Device name, typically ``"<host>.ram"``.
    size:
        Total physical memory in bytes.
    read_bandwidth, write_bandwidth:
        Memory bandwidths in bytes per second.
    latency:
        Per-access latency (usually 0 for the macroscopic model).
    sharing:
        Whether concurrent accesses share the memory bandwidth.
    """

    def __init__(self, env: Environment, name: str, *, size: float,
                 read_bandwidth: float, write_bandwidth: float,
                 latency: float = 0.0, sharing: bool = True,
                 unified_channel: Optional[bool] = None):
        if size <= 0:
            raise ConfigurationError(f"memory {name!r}: size must be positive")
        if unified_channel is None:
            unified_channel = read_bandwidth == write_bandwidth
        super().__init__(
            env,
            name,
            read_bandwidth=read_bandwidth,
            write_bandwidth=write_bandwidth,
            capacity=size,
            latency=latency,
            sharing=sharing,
            unified_channel=unified_channel,
        )

    @property
    def size(self) -> float:
        """Total physical memory in bytes (alias of ``capacity``)."""
        return self.capacity

    @classmethod
    def symmetric(cls, env: Environment, name: str, bandwidth: float, *,
                  size: float, latency: float = 0.0,
                  sharing: bool = True) -> "MemoryDevice":
        """Create a memory device with identical read and write bandwidths."""
        return cls(
            env,
            name,
            size=size,
            read_bandwidth=bandwidth,
            write_bandwidth=bandwidth,
            latency=latency,
            sharing=sharing,
        )

    def __repr__(self) -> str:
        return (
            f"<MemoryDevice {self.name!r} size={format_size(self.size)} "
            f"r={format_size(self.read_bandwidth)}/s "
            f"w={format_size(self.write_bandwidth)}/s>"
        )
