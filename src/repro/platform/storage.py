"""Storage device models (disks).

A :class:`StorageDevice` simulates transfer times through two
:class:`~repro.platform.flows.FairShareChannel` objects (one for reads, one
for writes) plus an optional per-access latency.  The original paper (and
SimGrid 3.25) only supports **symmetric** bandwidths, so the convenience
constructor :meth:`Disk.symmetric` creates a disk whose read and write
bandwidths are both set to the mean of the measured values, exactly as done
in Table III.  Asymmetric bandwidths are supported as well because the paper
identifies them as the main remaining source of simulation error.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.des.events import Event
from repro.errors import ConfigurationError, StorageError
from repro.platform.flows import FairShareChannel
from repro.units import format_size


class StorageDevice:
    """A device with read/write bandwidth, latency and capacity accounting.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Device name (e.g. ``"ssd0"``).
    read_bandwidth, write_bandwidth:
        Bandwidths in bytes per second.
    capacity:
        Usable capacity in bytes (``inf`` for unbounded devices).
    latency:
        Fixed per-access latency in seconds, added before the transfer.
    sharing:
        Whether concurrent accesses share bandwidth (fair sharing).  The
        contention-oblivious mode reproduces the standalone prototype.
    unified_channel:
        If ``True``, reads and writes compete on a single channel sized at
        ``read_bandwidth`` (requires symmetric bandwidths).  If ``False``
        (default), reads and writes use separate channels, mirroring the
        SimGrid disk model.
    """

    def __init__(self, env: Environment, name: str, *,
                 read_bandwidth: float, write_bandwidth: float,
                 capacity: float = float("inf"), latency: float = 0.0,
                 sharing: bool = True, unified_channel: bool = False):
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ConfigurationError(
                f"device {name!r}: bandwidths must be positive "
                f"(got read={read_bandwidth}, write={write_bandwidth})"
            )
        if capacity <= 0:
            raise ConfigurationError(f"device {name!r}: capacity must be positive")
        if latency < 0:
            raise ConfigurationError(f"device {name!r}: latency must be >= 0")
        if unified_channel and read_bandwidth != write_bandwidth:
            raise ConfigurationError(
                f"device {name!r}: a unified channel requires symmetric bandwidths"
            )
        self.env = env
        self.name = name
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self.capacity = float(capacity)
        self.latency = float(latency)
        self.sharing = sharing
        self.unified_channel = unified_channel

        self._read_channel = FairShareChannel(
            env, read_bandwidth, name=f"{name}.read", sharing=sharing
        )
        if unified_channel:
            self._write_channel = self._read_channel
        else:
            self._write_channel = FairShareChannel(
                env, write_bandwidth, name=f"{name}.write", sharing=sharing
            )
        #: Bytes currently stored on the device (maintained by file systems).
        self.used = 0.0
        #: Cumulative statistics.
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.read_ops = 0
        self.write_ops = 0

    # ------------------------------------------------------------------ info
    @property
    def free_space(self) -> float:
        """Remaining capacity in bytes."""
        return self.capacity - self.used

    @property
    def read_channel(self) -> FairShareChannel:
        """The fair-sharing channel carrying read traffic."""
        return self._read_channel

    @property
    def write_channel(self) -> FairShareChannel:
        """The fair-sharing channel carrying write traffic."""
        return self._write_channel

    # ------------------------------------------------------------- transfers
    def read(self, amount: float, label: Optional[str] = None) -> Event:
        """Simulate reading ``amount`` bytes; returns a completion event."""
        if amount < 0:
            raise ValueError("cannot read a negative amount")
        self.bytes_read += amount
        self.read_ops += 1
        if self.latency > 0:
            return self.env.process(
                self._delayed_transfer(self._read_channel, amount, label),
                name=f"{self.name}-read",
            )
        return self._read_channel.transfer(amount, label=label)

    def write(self, amount: float, label: Optional[str] = None) -> Event:
        """Simulate writing ``amount`` bytes; returns a completion event."""
        if amount < 0:
            raise ValueError("cannot write a negative amount")
        self.bytes_written += amount
        self.write_ops += 1
        if self.latency > 0:
            return self.env.process(
                self._delayed_transfer(self._write_channel, amount, label),
                name=f"{self.name}-write",
            )
        return self._write_channel.transfer(amount, label=label)

    def _delayed_transfer(self, channel: FairShareChannel, amount: float,
                          label: Optional[str]):
        yield self.env.timeout(self.latency)
        elapsed = yield channel.transfer(amount, label=label)
        return self.latency + elapsed

    # ------------------------------------------------------- space accounting
    def allocate(self, amount: float) -> None:
        """Reserve ``amount`` bytes of capacity (raises if the disk is full)."""
        if amount < 0:
            raise ValueError("cannot allocate a negative amount")
        if self.used + amount > self.capacity + 1e-6:
            raise StorageError(
                f"device {self.name!r} is full: cannot allocate "
                f"{format_size(amount)} ({format_size(self.free_space)} free)"
            )
        self.used += amount

    def deallocate(self, amount: float) -> None:
        """Release ``amount`` bytes of previously allocated capacity."""
        if amount < 0:
            raise ValueError("cannot deallocate a negative amount")
        self.used = max(0.0, self.used - amount)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"r={format_size(self.read_bandwidth)}/s "
            f"w={format_size(self.write_bandwidth)}/s "
            f"used={format_size(self.used)}/{format_size(self.capacity)}>"
        )


class Disk(StorageDevice):
    """A persistent storage device (SSD/HDD or an NFS-exported partition)."""

    @classmethod
    def symmetric(cls, env: Environment, name: str, bandwidth: float, *,
                  capacity: float = float("inf"), latency: float = 0.0,
                  sharing: bool = True) -> "Disk":
        """Create a disk with identical read and write bandwidths.

        This mirrors the paper's simulator configuration, which uses the
        mean of the measured read and write bandwidths because SimGrid 3.25
        only supports symmetrical disk bandwidths.  Reads and writes of a
        symmetric disk compete on a single channel, as in SimGrid's model.
        """
        return cls(
            env,
            name,
            read_bandwidth=bandwidth,
            write_bandwidth=bandwidth,
            capacity=capacity,
            latency=latency,
            sharing=sharing,
            unified_channel=True,
        )
