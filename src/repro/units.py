"""Unit constants and helpers.

All sizes in the simulator are expressed in **bytes**, all durations in
**seconds** and all bandwidths in **bytes per second**.  The constants below
make call sites self-documenting (``20 * GB``, ``465 * MBps``).

Decimal units (KB/MB/GB/TB) follow the SI convention (powers of 1000) which
is what the paper uses for file sizes and bandwidths; binary units
(KiB/MiB/GiB/TiB) are provided for memory sizes (the cluster nodes have
250 GiB of RAM).
"""

from __future__ import annotations

#: One byte.
B = 1

#: Decimal (SI) units.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Binary (IEC) units.
KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

#: Bandwidth helpers (bytes per second).
Bps = 1
KBps = KB
MBps = MB
GBps = GB

#: Time helpers (seconds).
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6


def format_size(num_bytes: float, *, binary: bool = False, precision: int = 2) -> str:
    """Return a human readable string for a size in bytes.

    Parameters
    ----------
    num_bytes:
        The size to format, in bytes.  Negative sizes are formatted with a
        leading minus sign.
    binary:
        If true, use IEC units (KiB/MiB/...); otherwise use SI units.
    precision:
        Number of decimal places.
    """
    sign = "-" if num_bytes < 0 else ""
    value = abs(float(num_bytes))
    if binary:
        step = 1024.0
        suffixes = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
    else:
        step = 1000.0
        suffixes = ["B", "KB", "MB", "GB", "TB", "PB"]
    for suffix in suffixes:
        if value < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{sign}{value:.0f} {suffix}"
            return f"{sign}{value:.{precision}f} {suffix}"
        value /= step
    raise AssertionError("unreachable")


def format_bandwidth(bytes_per_second: float, *, precision: int = 1) -> str:
    """Return a human readable bandwidth string (SI units per second)."""
    return f"{format_size(bytes_per_second, precision=precision)}/s"


def format_time(seconds: float, *, precision: int = 2) -> str:
    """Return a human readable duration string."""
    if seconds < 0:
        return f"-{format_time(-seconds, precision=precision)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.{precision}f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.{precision}f} ms"
    if seconds < MINUTE:
        return f"{seconds:.{precision}f} s"
    if seconds < HOUR:
        minutes, rest = divmod(seconds, MINUTE)
        return f"{int(minutes)} min {rest:.{precision}f} s"
    hours, rest = divmod(seconds, HOUR)
    minutes = rest / MINUTE
    return f"{int(hours)} h {minutes:.1f} min"


def parse_size(text: str) -> float:
    """Parse a human readable size string (``"20GB"``, ``"512 MiB"``) to bytes.

    Raises
    ------
    ValueError
        If the string cannot be interpreted as a size.
    """
    units = {
        "b": B,
        "kb": KB,
        "mb": MB,
        "gb": GB,
        "tb": TB,
        "pb": 1_000 * TB,
        "kib": KiB,
        "mib": MiB,
        "gib": GiB,
        "tib": TiB,
        "pib": 1024 * TiB,
    }
    stripped = text.strip().lower().replace(" ", "")
    number_part = ""
    for char in stripped:
        if char.isdigit() or char in ".+-e":
            number_part += char
        else:
            break
    unit_part = stripped[len(number_part) :] or "b"
    if not number_part:
        raise ValueError(f"cannot parse size from {text!r}")
    if unit_part not in units:
        raise ValueError(f"unknown size unit {unit_part!r} in {text!r}")
    return float(number_part) * units[unit_part]
