"""The cluster batch scheduler.

:class:`ClusterScheduler` is a discrete-event process that turns the
one-workflow-per-host simulator into a multi-node batch system: jobs arrive
over time into a queue, a pluggable policy picks the next job to start, a
pluggable placement strategy picks the node, and a
:class:`~repro.simulator.wms.WorkflowExecutor` runs the job's workflow on
that node, bounded by the node's core count.  Completed jobs free their
cores and are summarised into :class:`~repro.scheduler.metrics.SchedulerMetrics`.

:class:`NodeState` tracks the scheduler-visible state of one node: its
host, its local storage service, its free cores and its running jobs — plus
the page-cache residency queries the cache-locality placement relies on.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.des.environment import Environment
from repro.des.events import Event
from repro.errors import SchedulingError
from repro.filesystem.file import File
from repro.filesystem.registry import FileRegistry
from repro.scheduler.job import Job
from repro.scheduler.metrics import JobRecord, SchedulerMetrics, clamped_wait
from repro.scheduler.placement import PlacementStrategy, make_placement
from repro.scheduler.policies import SchedulingPolicy, fitting_nodes, make_policy
from repro.simulator.storage_service import StorageService
from repro.simulator.tracing import Tracer
from repro.simulator.wms import WorkflowExecutor

#: Scheduling tolerance in seconds.
_EPSILON = 1e-9


class NodeState:
    """Scheduler-visible state of one compute node.

    Parameters
    ----------
    host:
        The node's host (cores, memory, page cache).
    storage:
        The node-local storage service jobs placed here read from and
        write to.
    """

    def __init__(self, host, storage: StorageService):
        self.host = host
        self.storage = storage
        #: Total cores of the node (cached: policies query it constantly).
        self.total_cores = int(host.cores)
        self.free_cores = int(host.cores)
        #: Running jobs, keyed by job id.
        self.running: Dict[int, Job] = {}
        #: Draining nodes accept no new work (elastic leave, maintenance);
        #: running jobs finish normally.  Set via
        #: :meth:`ClusterScheduler.drain_node`.
        self.draining = False
        #: Departed elastic nodes (drain completed, capacity gone for
        #: good).  Leave wins every race: crash, repair and join events
        #: arriving for a left node are discarded.  Set via
        #: :meth:`ClusterScheduler.leave_node`.
        self.left = False
        #: Crashes this node has suffered (fault injection); placement
        #: strategies may penalise failure-prone nodes with it.
        self.n_failures = 0
        #: Cached release schedule for :meth:`earliest_fit_time` — the
        #: running jobs' estimated completions, sorted.  Invalidated on
        #: every allocate/release; between those the schedule is
        #: immutable, while backfilling policies query it once per node
        #: per scheduling pass (the old code re-sorted every call).
        self._release_schedule: Optional[List[Tuple[float, int]]] = None

    # --------------------------------------------------------------- queries
    @property
    def name(self) -> str:
        """The node's host name."""
        return self.host.name

    @property
    def up(self) -> bool:
        """Whether the node's host is up (single source of truth: the host)."""
        return self.host.up

    @property
    def available(self) -> bool:
        """Whether the node may receive new work: up, not draining, not left."""
        return self.host.up and not self.draining and not self.left

    @property
    def used_cores(self) -> int:
        """Cores currently reserved by running jobs."""
        return self.total_cores - self.free_cores

    @property
    def n_running(self) -> int:
        """Number of jobs currently running on the node."""
        return len(self.running)

    def cached_bytes_of(self, files: Iterable[File]) -> float:
        """Bytes of ``files`` resident in this node's page cache.

        Returns 0 when the node has no page cache (cacheless services).
        """
        manager = self.host.memory_manager
        if manager is None:
            return 0.0
        return sum(manager.cached_amount(f.name) for f in files)

    def earliest_fit_time(self, cores: int, now: float) -> float:
        """Earliest time this node is expected to have ``cores`` free.

        Walks the running jobs in order of their *estimated* completion
        (``start + estimated_runtime``, clamped to ``now`` for overrunning
        jobs) and returns the time at which enough cores accumulate;
        ``inf`` when the node can never fit the request.

        The sorted completion schedule is cached across calls and only
        rebuilt after an allocate/release.  The clamp to ``now`` happens
        at query time: ``max(now, t)`` is monotone, so the raw-sorted
        order is also clamped-sorted order, and entries tied at the same
        (clamped) time all report that same time — the returned fit time
        is identical to re-sorting the clamped schedule on every call.
        (A job's ``start_time`` is still unset when the policy runs in
        the dispatch pass that allocated it; it is substituted with the
        build-time ``now``, which is exactly the timestamp the process
        will record when it first runs.)
        """
        if cores > self.total_cores:
            return float("inf")
        free = self.free_cores
        if free >= cores:
            return now
        releases = self._release_schedule
        if releases is None:
            releases = self._release_schedule = sorted(
                (
                    (job.start_time if job.start_time is not None else now)
                    + job.estimated_runtime,
                    job.cores,
                )
                for job in self.running.values()
            )
        for time, released in releases:
            free += released
            if free >= cores:
                return time if time > now else now
        return float("inf")

    # ------------------------------------------------------------ accounting
    def allocate(self, job: Job) -> None:
        """Reserve the job's cores on this node."""
        if job.cores > self.free_cores:
            raise SchedulingError(
                f"node {self.name!r} has {self.free_cores} free cores, "
                f"job {job.label!r} needs {job.cores}"
            )
        self.free_cores -= job.cores
        self.running[job.id] = job
        self._release_schedule = None

    def release(self, job: Job) -> None:
        """Release the job's cores."""
        if job.id in self.running:
            del self.running[job.id]
            self.free_cores += job.cores
            self._release_schedule = None

    def __repr__(self) -> str:
        return (
            f"<NodeState {self.name!r} free={self.free_cores}/{self.total_cores} "
            f"running={sorted(job.label for job in self.running.values())}>"
        )


class ClusterScheduler:
    """Dispatches queued batch jobs onto the nodes of a cluster.

    Parameters
    ----------
    env:
        Simulation environment.
    nodes:
        The compute nodes (with their node-local storage services).
    registry:
        File registry shared with the rest of the simulation.
    tracer:
        Receives the operation records of every executed workflow.
    policy:
        Scheduling policy (name or instance); decides *which* job is next.
    placement:
        Placement strategy (name or instance); decides *where* it runs.
    chunk_size:
        I/O granularity forwarded to the workflow executors.
    lost_work_penalty:
        Seconds of compute progress a job loses each time it is preempted
        (checkpoint-and-requeue redoes the work since the last
        checkpoint); forwarded to the workflow executors.
    streaming:
        Accept submissions *while the simulation runs*: :meth:`feed` may
        be called at any paused point and the main loop waits for new
        work instead of terminating when it drains.  The run ends once
        :meth:`close_stream` declares the submission stream over and all
        accepted jobs completed.  Off by default — the batch loop is the
        parity-pinned historical behaviour.
    """

    def __init__(self, env: Environment, nodes: List[NodeState],
                 registry: FileRegistry, tracer: Tracer, *,
                 policy: Union[str, SchedulingPolicy] = "fifo",
                 placement: Union[str, PlacementStrategy] = "round-robin",
                 chunk_size: Optional[float] = None,
                 lost_work_penalty: float = 0.0,
                 streaming: bool = False,
                 name: str = "cluster-scheduler"):
        if not nodes:
            raise SchedulingError("a cluster scheduler needs at least one node")
        if lost_work_penalty < 0:
            raise SchedulingError("lost_work_penalty must be >= 0")
        self.env = env
        self.nodes = list(nodes)
        self.registry = registry
        self.tracer = tracer
        self.policy = make_policy(policy)
        self.placement = make_placement(placement)
        self.chunk_size = chunk_size
        self.lost_work_penalty = float(lost_work_penalty)
        self.name = name

        #: All submitted jobs, in submission order.
        self.jobs: List[Job] = []
        #: Jobs that have arrived but not yet been dispatched.
        self.queue: List[Job] = []
        #: Records of completed jobs.
        self.records: List[JobRecord] = []
        #: Executors created for dispatched jobs (for per-app makespans).
        self.executors: List[WorkflowExecutor] = []
        self._running_procs: Dict[int, object] = {}
        #: Executor of each dispatched job, reused across preemptions so
        #: the checkpoint (completed tasks, compute credit) carries over.
        self._executors_by_job: Dict[int, WorkflowExecutor] = {}
        #: Jobs whose suspension is in flight (interrupted, not yet
        #: requeued); no new preemption is planned until this drains.
        self._suspending: Dict[int, Job] = {}
        #: Ids of jobs interrupted by a node *crash* (as opposed to a
        #: policy preemption): they requeue unpinned, with a restart
        #: counted instead of a preemption.
        self._crashed: set = set()
        #: Node crashes injected so far (see :meth:`fail_node`).
        self.n_node_failures = 0
        #: Crash-driven requeues so far.
        self.n_job_restarts = 0
        #: Fault mode keeps the scheduler alive when no node is currently
        #: available (all down / draining): instead of raising the stall
        #: guard, the main loop also waits on a :meth:`kick` event that
        #: fault and elasticity transitions trigger.  Enabled by the fault
        #: injector; off by default so fault-free runs are byte-identical
        #: to the pre-fault scheduler.
        self.fault_mode = False
        self._kick: Optional[Event] = None
        #: Streaming mode (see the class docstring).
        self.streaming = bool(streaming)
        self._stream_closed = False
        self._stream_event: Optional[Event] = None
        #: Fed-but-not-yet-arrived jobs, a heap of (arrival_time, id, job).
        self._stream_arrivals: List[Tuple[float, int, Job]] = []
        self._labels: set = set()
        self._next_id = 0
        self._started = False

    # ------------------------------------------------------------ submission
    def submit(self, job: Job) -> Job:
        """Register a job for execution; must be called before :meth:`run`."""
        if self.streaming:
            return self.feed(job)
        if self._started:
            raise SchedulingError(
                "jobs must be submitted before the simulation starts"
            )
        self._validate(job)
        job.id = self._next_id
        self._next_id += 1
        self.jobs.append(job)
        return job

    def _validate(self, job: Job) -> None:
        max_cores = max(node.total_cores for node in self.nodes)
        if job.cores > max_cores:
            raise SchedulingError(
                f"job {job.label!r} needs {job.cores} cores but the largest "
                f"node has only {max_cores}"
            )
        # Labels key the traces and per-app makespans; duplicates would
        # silently merge two jobs' results.
        if job.label in self._labels:
            raise SchedulingError(
                f"a job labelled {job.label!r} was already submitted; "
                "give each job a unique label"
            )
        self._labels.add(job.label)

    def feed(self, job: Job) -> Job:
        """Submit a job to a streaming scheduler, possibly mid-run.

        May be called before the simulation starts or at any *paused*
        point afterwards (between :meth:`Environment.step` calls — e.g.
        from a service loop that drives the DES via ``step_until``).  An
        arrival time in the simulated past is clamped to ``env.now``: a
        job cannot arrive before the instant it was fed.
        """
        if not self.streaming:
            raise SchedulingError(
                "feed() requires a streaming scheduler; use submit()"
            )
        if self._stream_closed:
            raise SchedulingError(
                "the submission stream is closed; no further jobs accepted"
            )
        self._validate(job)
        job.id = self._next_id
        self._next_id += 1
        if self._started and job.arrival_time < self.env.now:
            job.arrival_time = self.env.now
        self.jobs.append(job)
        heapq.heappush(
            self._stream_arrivals, (job.arrival_time, job.id, job)
        )
        if self._started:
            self._wake_stream()
        return job

    def close_stream(self) -> None:
        """Declare the submission stream over.

        The streaming main loop terminates once every already-accepted
        job has completed; further :meth:`feed` calls raise.  Idempotent.
        """
        if not self.streaming:
            raise SchedulingError("close_stream() requires a streaming scheduler")
        if self._stream_closed:
            return
        self._stream_closed = True
        if self._started:
            self._wake_stream()

    def _wake_stream(self) -> None:
        """Wake the streaming main loop after a feed/close."""
        event = self._stream_event
        if event is not None and not event.triggered:
            event.succeed()

    @property
    def total_cores(self) -> int:
        """Total cores over all nodes."""
        return sum(node.total_cores for node in self.nodes)

    def node(self, name: str) -> NodeState:
        """Return the node named ``name``."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise SchedulingError(
            f"unknown node {name!r}; known nodes: {[n.name for n in self.nodes]}"
        )

    # -------------------------------------------------------------- main loop
    def run(self):
        """Scheduler main loop; simulation process.

        Event-driven: the loop wakes up on the next job arrival or on any
        job completion, moves newly arrived jobs into the queue, and asks
        the policy/placement pair for dispatch decisions until no further
        job can start.
        """
        self._started = True
        if self.streaming:
            yield from self._run_stream()
            return
        pending = sorted(self.jobs, key=lambda job: (job.arrival_time, job.id))
        index = 0
        # The timeout to the next arrival is reused across wake-ups (a
        # job completion must not schedule a duplicate timeout for the
        # same arrival); processed conditions ignore late callbacks, so
        # sharing the event across any_of calls is safe.
        arrival_timeout = None
        arrival_index = -1

        while index < len(pending) or self.queue or self._running_procs:
            now = self.env.now
            while index < len(pending) and pending[index].arrival_time <= now + _EPSILON:
                self.queue.append(pending[index])
                index += 1

            self._dispatch()

            observer = self.env.observer
            if observer is not None:
                observer.counter_sample(
                    "scheduler.jobs", "scheduler", now,
                    {"queued": len(self.queue),
                     "running": len(self._running_procs)},
                )

            waits = list(self._running_procs.values())
            if index < len(pending):
                if arrival_index != index:
                    arrival_timeout = self.env.timeout(
                        max(0.0, pending[index].arrival_time - now)
                    )
                    arrival_index = index
                waits.append(arrival_timeout)
            if self.fault_mode:
                # Under fault injection the scheduler can be left with
                # queued jobs and nothing to wait on (every node down or
                # draining).  fail/restore/drain/undrain transitions
                # trigger the kick event, re-running the dispatch pass.
                kick = self._kick
                if kick is None or kick.triggered:
                    kick = self._kick = Event(self.env)
                waits.append(kick)
            if not waits:
                # Jobs are validated to fit on some node at submission, so
                # an empty cluster with a non-empty queue is a logic error.
                raise SchedulingError(
                    f"scheduler stalled with {len(self.queue)} queued job(s)"
                )
            yield self.env.any_of(waits)

            # Reap completed job processes.  The dict is only mutated
            # after the scan, so no per-poll ``list(items())`` snapshot is
            # needed; the (usually tiny) finished list is allocated only
            # when something actually completed.
            finished = None
            for job_id, process in self._running_procs.items():
                if process.is_alive:
                    continue
                if not process.ok:
                    raise process.value
                if finished is None:
                    finished = []
                finished.append(job_id)
            if finished is not None:
                for job_id in finished:
                    del self._running_procs[job_id]

    def _run_stream(self):
        """Streaming main loop; simulation process.

        Like the batch loop, but arrivals come from the :meth:`feed` heap
        instead of a pre-sorted snapshot, and an open stream keeps the
        loop alive even when it has nothing to do: it waits on a wake
        event that :meth:`feed` / :meth:`close_stream` trigger.  The loop
        exits once the stream is closed and every accepted job finished.
        """
        arrivals = self._stream_arrivals
        arrival_timeout = None
        arrival_id = -1

        while (not self._stream_closed or arrivals
               or self.queue or self._running_procs):
            now = self.env.now
            while arrivals and arrivals[0][0] <= now + _EPSILON:
                self.queue.append(heapq.heappop(arrivals)[2])

            self._dispatch()

            observer = self.env.observer
            if observer is not None:
                observer.counter_sample(
                    "scheduler.jobs", "scheduler", now,
                    {"queued": len(self.queue),
                     "running": len(self._running_procs)},
                )

            waits = list(self._running_procs.values())
            if arrivals:
                # Reuse the timeout to the next arrival across wake-ups,
                # keyed by the head job's id (a feed may change the head).
                head_time, head_id, _ = arrivals[0]
                if arrival_id != head_id:
                    arrival_timeout = self.env.timeout(max(0.0, head_time - now))
                    arrival_id = head_id
                waits.append(arrival_timeout)
            if self.fault_mode:
                kick = self._kick
                if kick is None or kick.triggered:
                    kick = self._kick = Event(self.env)
                waits.append(kick)
            if not self._stream_closed:
                wake = self._stream_event
                if wake is None or wake.triggered:
                    wake = self._stream_event = Event(self.env)
                waits.append(wake)
            if not waits:
                if self.queue:
                    raise SchedulingError(
                        f"scheduler stalled with {len(self.queue)} queued job(s)"
                    )
                break
            yield self.env.any_of(waits)

            finished = None
            for job_id, process in self._running_procs.items():
                if process.is_alive:
                    continue
                if not process.ok:
                    raise process.value
                if finished is None:
                    finished = []
                finished.append(job_id)
            if finished is not None:
                for job_id in finished:
                    del self._running_procs[job_id]

    def _dispatch(self) -> None:
        """Start every job the policy allows right now."""
        while self.queue:
            decision = self.policy.select(self.queue, self.nodes, self.env.now)
            if decision is None:
                break
            job = decision.job
            candidates = decision.allowed_nodes
            if candidates is None:
                candidates = fitting_nodes(job, self.nodes)
            if not candidates:
                raise SchedulingError(
                    f"policy {self.policy.name!r} selected job {job.label!r} "
                    "but no node can fit it"
                )
            node = self.placement.select_node(job, candidates, self.env.now)
            self.queue.remove(job)
            node.allocate(job)
            # Create the executor before the job's process first runs, so
            # a preemption planned in this very dispatch pass can already
            # checkpoint the job (the process itself starts later).
            self._executor_for(job, node)
            process = self.env.process(
                self._run_job(job, node), name=f"{self.name}:{job.label}"
            )
            self._running_procs[job.id] = process
        self._try_preempt()

    def _try_preempt(self) -> None:
        """Suspend lower-priority running jobs if the policy asks for it.

        Only preemptive policies expose ``plan_preemption``.  While a
        suspension is in flight (victims interrupted but not yet
        requeued), no further plan is made: the preemptor dispatches
        naturally once the victims' cores are released, and planning
        against half-suspended node state would double-count victims.
        """
        planner = getattr(self.policy, "plan_preemption", None)
        if planner is None or not self.queue or self._suspending:
            return
        plan = planner(self.queue, self.nodes, self.env.now)
        if plan is None:
            return
        observer = self.env.observer
        for victim in plan.victims:
            self._suspending[victim.id] = victim
            self._executors_by_job[victim.id].preempt()
            # Priority-aware eviction: the victim's input files lose their
            # residency privilege on the node that was running it.
            if victim.node_name is not None:
                manager = self.node(victim.node_name).host.memory_manager
                if manager is not None and manager.wants_job_events:
                    manager.notify_job_preempted(
                        [f.name for f in victim.input_files()]
                    )
            if observer is not None:
                observer.instant(
                    f"preempt:{victim.label}", "preemption", "scheduler",
                    self.env.now,
                    {"job": victim.label, "node": victim.node_name,
                     "cores": victim.cores},
                )
                observer.registry.counter("scheduler.preemptions").inc()

    # ------------------------------------------------------ faults/elasticity
    def kick(self) -> None:
        """Wake the main loop for an out-of-band cluster-state change.

        Called by the fault injector after a node comes up (repair,
        elastic join): queued jobs may now fit where nothing fit before,
        and no arrival or completion is guaranteed to wake the loop.
        """
        kick = self._kick
        if kick is not None and not kick.triggered:
            kick.succeed()

    def fail_node(self, name: str) -> List[Job]:
        """Crash a node: kill its jobs, mark it down, abort its transfers.

        Every job running on the node is interrupted through the
        checkpoint machinery in *crash* mode (no compute credit for the
        in-flight segment — that progress lived in the node's memory) and
        will requeue unpinned with ``restarts`` incremented once its
        process unwinds.  The host is marked down and all in-flight
        transfers on its devices abort.  Returns the victim jobs.

        The caller — normally the fault injector — must let the current
        event cascade drain (``yield env.timeout(0)``) and then invalidate
        the node's page cache; the interrupted tasks' rollbacks release
        their anonymous memory first, keeping the accounting exact.
        """
        node = self.node(name)
        if not node.up or node.left:
            return []
        node.n_failures += 1
        self.n_node_failures += 1
        victims = list(node.running.values())
        for victim in victims:
            self._crashed.add(victim.id)
            self._suspending[victim.id] = victim
            executor = self._executors_by_job.get(victim.id)
            if executor is not None:
                executor.crash()
        aborted = node.host.fail()
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"fail:{name}", "fault", "scheduler", self.env.now,
                {"node": name, "victims": len(victims),
                 "aborted_flows": aborted},
            )
            observer.registry.counter("faults.node_failures").inc()
        return victims

    def restore_node(self, name: str) -> None:
        """Bring a crashed node back up (repaired) and wake the loop.

        A repair arriving for a node that has since left the cluster
        (elastic leave completed while the node was down) is discarded:
        leave wins the race.
        """
        node = self.node(name)
        if node.up or node.left:
            return
        node.host.restore()
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"repair:{name}", "fault", "scheduler", self.env.now,
                {"node": name},
            )
            observer.registry.counter("faults.node_repairs").inc()
        self.kick()

    def drain_node(self, name: str) -> None:
        """Stop dispatching to a node; running jobs finish normally.

        The first half of drain-before-leave elasticity: once
        ``node.running`` empties the node can safely leave.
        """
        node = self.node(name)
        if node.draining:
            return
        node.draining = True
        # A preempted job pinned to this node could otherwise never
        # resume once the node leaves; unpin it (the checkpoint on the
        # node's storage stays readable remotely).
        for job in self.queue:
            if job.pinned_node == name:
                job.pinned_node = None
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"drain:{name}", "elastic", "scheduler", self.env.now,
                {"node": name, "running": node.n_running},
            )

    def undrain_node(self, name: str) -> None:
        """Make a draining (or not-yet-joined burstable) node schedulable.

        A join arriving for a node that already left is discarded — a
        departed node cannot rejoin the cluster.
        """
        node = self.node(name)
        if node.left or not node.draining:
            return
        node.draining = False
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"join:{name}", "elastic", "scheduler", self.env.now,
                {"node": name},
            )
        self.kick()

    def leave_node(self, name: str) -> None:
        """Complete an elastic leave: the drained node departs for good.

        The second half of drain-before-leave.  From here on the node is
        permanently out of the cluster; the crash/repair machinery
        discards every event still in flight for it (a pending repair of
        a crashed-while-draining node never restores it), and join events
        are ignored.  Idempotent.
        """
        node = self.node(name)
        if node.left:
            return
        node.left = True
        node.draining = True
        observer = self.env.observer
        if observer is not None:
            observer.instant(
                f"leave:{name}", "elastic", "scheduler", self.env.now,
                {"node": name},
            )
            observer.registry.counter("faults.elastic_leaves").inc()

    def _executor_for(self, job: Job, node: NodeState) -> WorkflowExecutor:
        """The job's executor, created on first dispatch and reused after."""
        executor = self._executors_by_job.get(job.id)
        if executor is None:
            executor = WorkflowExecutor(
                self.env,
                job.workflow,
                node.host,
                self.registry,
                node.storage,
                self.tracer,
                label=job.label,
                chunk_size=self.chunk_size,
                # The reservation is an execution bound: a job never runs
                # more concurrent tasks than the cores it reserved.
                max_concurrent_tasks=job.cores,
                lost_work_penalty=self.lost_work_penalty,
            )
            self._executors_by_job[job.id] = executor
            self.executors.append(executor)
        elif executor.host is not node.host:
            # Crash restart placed the job on a different node: repoint
            # the executor (outputs written so far stay on the old node's
            # storage and are read remotely via the registry).
            executor.rebind(node.host, node.storage)
        return executor

    def _run_job(self, job: Job, node: NodeState):
        """Execute (or resume) one dispatched job on ``node``; simulation
        process.

        A preempted job keeps its executor: the checkpoint — completed
        tasks, partial compute credit, and the node's page-cache residency
        of its input files — carries over to the resume.
        """
        executor = self._executor_for(job, node)
        job.node_name = node.name
        if job.start_time is None:
            job.start_time = self.env.now
        job.last_start_time = self.env.now
        # Cache-ownership plumbing: a dispatch (or resume) registers the
        # job's inputs, priority and clamped queueing wait with the node's
        # eviction policy, when the policy consumes job events.
        manager = node.host.memory_manager
        if manager is not None and manager.wants_job_events:
            manager.notify_job_dispatch(
                [f.name for f in job.input_files()],
                job.priority,
                wait=clamped_wait(job.start_time, job.arrival_time),
            )
        preempted = False
        try:
            outcome = yield from executor.run()
            preempted = outcome == WorkflowExecutor.PREEMPTED
        finally:
            job.run_seconds += self.env.now - job.last_start_time
            node.release(job)
            self._suspending.pop(job.id, None)
            observer = self.env.observer
            if observer is not None:
                # One "job" span per run segment: a preempted job shows as
                # several segments separated by its requeued wait.
                observer.complete(
                    job.label, "job", f"node:{node.name}",
                    job.last_start_time, self.env.now,
                    {"cores": job.cores, "priority": job.priority,
                     "preempted": preempted},
                )
        if preempted:
            if job.id in self._crashed:
                # Crash restart: the in-flight segment is gone (no credit
                # past the last checkpoint) and the node is down — requeue
                # unpinned so any node may restart the job.
                self._crashed.discard(job.id)
                job.restarts += 1
                self.n_job_restarts += 1
                job.pinned_node = None
                observer = self.env.observer
                if observer is not None:
                    observer.instant(
                        f"restart:{job.label}", "fault", "scheduler",
                        self.env.now,
                        {"job": job.label, "node": node.name,
                         "restarts": job.restarts},
                    )
                    observer.registry.counter("faults.job_restarts").inc()
            else:
                job.preemptions += 1
                # Resume on the checkpoint's node — unless the node can no
                # longer take work (crashed or draining since the plan).
                job.pinned_node = node.name if node.available else None
            self.queue.append(job)
            return
        job.end_time = self.env.now
        observer = self.env.observer
        if observer is not None:
            registry = observer.registry
            registry.counter("scheduler.jobs_completed").inc()
            registry.histogram("scheduler.job_wait_seconds").observe(
                clamped_wait(job.start_time, job.arrival_time)
            )
            registry.histogram("scheduler.job_turnaround_seconds").observe(
                clamped_wait(job.end_time, job.arrival_time)
            )
        self.records.append(
            JobRecord(
                job_id=job.id,
                label=job.label,
                node=node.name,
                cores=job.cores,
                arrival_time=job.arrival_time,
                start_time=job.start_time,
                end_time=job.end_time,
                estimated_runtime=job.estimated_runtime,
                priority=job.priority,
                preemptions=job.preemptions,
                restarts=job.restarts,
                run_seconds=job.run_seconds,
            )
        )

    # --------------------------------------------------------------- results
    def metrics(self) -> SchedulerMetrics:
        """Aggregate metrics over the completed jobs."""
        records = sorted(self.records, key=lambda r: r.job_id)
        first_arrival = min((r.arrival_time for r in records), default=0.0)
        last_completion = max((r.end_time for r in records), default=0.0)
        return SchedulerMetrics(
            records=records,
            total_cores=self.total_cores,
            first_arrival=first_arrival,
            last_completion=last_completion,
            n_node_failures=self.n_node_failures,
            n_job_restarts=self.n_job_restarts,
            lost_work_seconds=sum(
                executor.lost_compute_seconds for executor in self.executors
            ),
        )

    def __repr__(self) -> str:
        return (
            f"<ClusterScheduler nodes={len(self.nodes)} "
            f"policy={self.policy.name!r} placement={self.placement.name!r} "
            f"jobs={len(self.jobs)}>"
        )
