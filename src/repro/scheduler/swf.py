"""Standard Workload Format (SWF) traces.

The SWF is the community format for batch-cluster workload logs (the
Parallel Workloads Archive): a plain-text file whose header lines start
with ``;`` and carry ``; Key: Value`` directives, followed by one line per
job with exactly 18 whitespace-separated numeric fields::

    job_id submit wait run used_procs used_cpu used_mem req_procs req_time
    req_mem status user group executable queue partition preceding think

Unknown values are encoded as ``-1``.  Real archive traces routinely
contain malformed lines (truncated records, stray comments, editor junk),
so the parser is tolerant: lines that do not parse are counted and
reported, never fatal.

Replaying a trace against a simulated cluster needs three scaling knobs,
all provided by :meth:`SWFTrace.job_specs`:

* ``max_jobs`` — truncate the trace to its first N jobs;
* ``load_factor`` — compress (``> 1``) or stretch (``< 1``) inter-arrival
  times to raise or lower the offered load;
* ``max_cores`` — proportionally rescale per-job core requests so the
  widest trace job fits the simulated cluster's largest node.

The resulting :class:`TraceJobSpec` list is what
:meth:`repro.simulator.simulation.Simulation.submit_trace` turns into
batch jobs; :meth:`SWFTrace.arrival_process` feeds the same arrival times
to a :class:`~repro.scheduler.arrivals.TraceArrivalProcess` for callers
that only want the arrival pattern.
"""

from __future__ import annotations

import gzip
import os
import tempfile
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.errors import ConfigurationError
from repro.scheduler.arrivals import TraceArrivalProcess

#: The 18 record fields of the Standard Workload Format, in order.
SWF_FIELDS: Tuple[str, ...] = (
    "job_id",
    "submit_time",
    "wait_time",
    "run_time",
    "used_procs",
    "used_cpu_time",
    "used_memory",
    "requested_procs",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)

#: Fields holding integral values (the rest are seconds or kilobytes).
_INT_FIELDS = frozenset(
    (
        "job_id",
        "used_procs",
        "requested_procs",
        "status",
        "user_id",
        "group_id",
        "executable",
        "queue",
        "partition",
        "preceding_job",
    )
)


def _format_number(value: Union[int, float]) -> str:
    """Render a field value so that parse(write(x)) == x."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass
class SWFRecord:
    """One SWF job record (all 18 standard fields, ``-1`` = unknown)."""

    job_id: int = -1
    submit_time: float = -1.0
    wait_time: float = -1.0
    run_time: float = -1.0
    used_procs: int = -1
    used_cpu_time: float = -1.0
    used_memory: float = -1.0
    requested_procs: int = -1
    requested_time: float = -1.0
    requested_memory: float = -1.0
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1.0

    @classmethod
    def from_tokens(cls, tokens: List[str]) -> "SWFRecord":
        """Build a record from the 18 whitespace-separated field tokens."""
        if len(tokens) != len(SWF_FIELDS):
            raise ValueError(
                f"expected {len(SWF_FIELDS)} fields, got {len(tokens)}"
            )
        values: Dict[str, Union[int, float]] = {}
        for name, token in zip(SWF_FIELDS, tokens):
            if name in _INT_FIELDS:
                # Integral fields occasionally appear as "12.0" in archive
                # traces; accept them but reject genuine fractions.
                number = float(token)
                if number != int(number):
                    raise ValueError(f"field {name!r} must be integral, got {token}")
                values[name] = int(number)
            else:
                values[name] = float(token)
        return cls(**values)

    def to_line(self) -> str:
        """Render the record as one SWF data line."""
        return " ".join(
            _format_number(getattr(self, name)) for name in SWF_FIELDS
        )

    @property
    def cores(self) -> int:
        """Best-effort core request: requested procs, else used procs."""
        if self.requested_procs > 0:
            return self.requested_procs
        return max(self.used_procs, 1)


@dataclass
class TraceJobSpec:
    """One trace job after scaling, ready to be submitted as a batch job."""

    job_id: int
    arrival_time: float
    cores: int
    runtime: float
    estimated_runtime: float
    priority: int
    #: Application (SWF "executable number"); keys the shared input dataset.
    app: int
    user: int


@dataclass
class SWFTrace:
    """A parsed SWF trace: header directives plus job records."""

    #: ``; Key: Value`` header directives; repeated keys (the standard
    #: uses one ``Queue:``/``Partition:`` directive per queue/partition)
    #: keep their first value here — the full header survives in
    #: :attr:`header`.
    directives: Dict[str, str] = field(default_factory=dict)
    #: Parsed job records, in file order.
    records: List[SWFRecord] = field(default_factory=list)
    #: ``(line_number, reason)`` of every tolerated malformed line.
    skipped: List[Tuple[int, str]] = field(default_factory=list)
    #: Every ``(key, value)`` header directive in file order, repeats
    #: included; this is what the writer emits, so a parse → write → parse
    #: round trip preserves the complete header.
    header: List[Tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Traces built programmatically with only `directives` still
        # round-trip: the header defaults to the directive dict.
        if not self.header and self.directives:
            self.header = list(self.directives.items())

    # --------------------------------------------------------------- queries
    @property
    def n_jobs(self) -> int:
        """Number of parsed job records."""
        return len(self.records)

    @property
    def max_procs(self) -> int:
        """Widest core request in the trace (``MaxProcs`` directive wins)."""
        declared = self.directives.get("MaxProcs")
        if declared is not None:
            try:
                return int(declared)
            except ValueError:
                pass
        return max((record.cores for record in self.records), default=1)

    def arrival_process(self, *, load_factor: float = 1.0,
                        max_jobs: Optional[int] = None) -> TraceArrivalProcess:
        """The trace's arrival pattern as a :class:`TraceArrivalProcess`."""
        specs = self.job_specs(load_factor=load_factor, max_jobs=max_jobs)
        return TraceArrivalProcess([spec.arrival_time for spec in specs])

    # ---------------------------------------------------------------- scaling
    def job_specs(self, *, max_jobs: Optional[int] = None,
                  load_factor: float = 1.0,
                  runtime_scale: float = 1.0,
                  max_cores: Optional[int] = None,
                  priority_of: Optional[Callable[[SWFRecord], int]] = None,
                  ) -> List[TraceJobSpec]:
        """Scale the trace records into submittable job specs.

        Parameters
        ----------
        max_jobs:
            Keep only the first N jobs (submission order).
        load_factor:
            Divides inter-arrival times: ``2.0`` doubles the offered load,
            ``0.5`` halves it.  Arrivals are re-based so the first job
            arrives at time 0.
        runtime_scale:
            Multiplies run times and runtime estimates, so hour-long trace
            jobs can replay in seconds of simulated time.
        max_cores:
            Proportionally rescale core requests so the widest trace job
            uses exactly ``max_cores`` (every job keeps at least one core).
            ``None`` keeps the trace's core counts.
        priority_of:
            Maps a record to a priority class (higher = more urgent).  The
            default uses the SWF queue number (clamped to 0 for unknown),
            the conventional encoding of priority classes in the archive.
        """
        if load_factor <= 0:
            raise ConfigurationError(
                f"load_factor must be positive, got {load_factor}"
            )
        if runtime_scale <= 0:
            raise ConfigurationError(
                f"runtime_scale must be positive, got {runtime_scale}"
            )
        if max_cores is not None and max_cores < 1:
            raise ConfigurationError(
                f"max_cores must be >= 1, got {max_cores}"
            )
        if priority_of is None:
            priority_of = lambda record: max(0, record.queue)  # noqa: E731

        usable = [
            record for record in self.records
            if record.run_time > 0 and record.cores > 0
        ]
        usable.sort(key=lambda record: (record.submit_time, record.job_id))
        if max_jobs is not None:
            usable = usable[:max_jobs]
        if not usable:
            return []

        trace_max = max(record.cores for record in usable)
        first_submit = min(record.submit_time for record in usable)
        specs: List[TraceJobSpec] = []
        for record in usable:
            # Jobs "submitted in the past" (submit before the trace start,
            # seen in stitched archive logs) clamp to an arrival of 0.
            arrival = max(0.0, record.submit_time - first_submit) / load_factor
            cores = record.cores
            if max_cores is not None and trace_max > max_cores:
                cores = max(1, round(cores * max_cores / trace_max))
            cores = min(cores, max_cores) if max_cores is not None else cores
            runtime = record.run_time * runtime_scale
            estimate = (
                record.requested_time * runtime_scale
                if record.requested_time > 0
                else runtime
            )
            specs.append(
                TraceJobSpec(
                    job_id=record.job_id,
                    arrival_time=arrival,
                    cores=cores,
                    runtime=runtime,
                    estimated_runtime=max(estimate, runtime),
                    priority=priority_of(record),
                    app=max(0, record.executable),
                    user=max(0, record.user_id),
                )
            )
        return specs


# -------------------------------------------------------------------- parsing
def parse_swf(text: str) -> SWFTrace:
    """Parse SWF text into an :class:`SWFTrace`.

    Header directives (``; Key: Value``) are collected in order; plain
    comments are ignored.  Data lines that do not hold 18 parseable numeric
    fields are tolerated: they are skipped and recorded in
    :attr:`SWFTrace.skipped` with the line number and reason.
    """
    trace = SWFTrace()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line.lstrip(";").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                key = key.strip()
                if key:
                    trace.header.append((key, value.strip()))
                    trace.directives.setdefault(key, value.strip())
            continue
        tokens = line.split()
        try:
            trace.records.append(SWFRecord.from_tokens(tokens))
        except ValueError as error:
            trace.skipped.append((line_number, str(error)))
    return trace


def load_swf(path: Union[str, Path]) -> SWFTrace:
    """Read and parse an SWF trace file."""
    return parse_swf(Path(path).read_text())


# -------------------------------------------------------------------- writing
def dump_swf(trace: SWFTrace) -> str:
    """Render a trace back to SWF text (full header, then records).

    ``parse_swf(dump_swf(trace))`` yields the same header (repeated
    directives included) and records, which is the round-trip property
    the test suite checks.
    """
    lines = [f"; {key}: {value}" for key, value in trace.header]
    lines.extend(record.to_line() for record in trace.records)
    return "\n".join(lines) + "\n"


def save_swf(trace: SWFTrace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in SWF format."""
    Path(path).write_text(dump_swf(trace))


# ----------------------------------------------------------------- archive
#: Well-known Parallel Workloads Archive traces, by short name.  The
#: archive serves cleaned logs as gzipped SWF; :func:`fetch_trace`
#: downloads, decompresses and caches them locally.
KNOWN_TRACES: Dict[str, str] = {
    "KTH-SP2": (
        "https://www.cs.huji.ac.il/labs/parallel/workload/"
        "l_kth_sp2/KTH-SP2-1996-2.1-cln.swf.gz"
    ),
    "SDSC-BLUE": (
        "https://www.cs.huji.ac.il/labs/parallel/workload/"
        "l_sdsc_blue/SDSC-BLUE-2000-4.2-cln.swf.gz"
    ),
    "CTC-SP2": (
        "https://www.cs.huji.ac.il/labs/parallel/workload/"
        "l_ctc_sp2/CTC-SP2-1996-3.1-cln.swf.gz"
    ),
}


def default_cache_dir() -> Path:
    """Trace cache directory: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``
    (honouring ``$XDG_CACHE_HOME``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


#: Seconds before a stalled archive download errors out.
FETCH_TIMEOUT = 60.0
#: Download attempts per fetch (the archive mirror drops connections
#: under load; transient network errors should not fail a sweep).
FETCH_RETRIES = 3
#: Base of the exponential backoff between attempts, in seconds:
#: attempt ``k`` (0-based) sleeps ``FETCH_BACKOFF * 2**k`` after failing.
FETCH_BACKOFF = 1.0

#: Sleep hook used between retry attempts — module-level so tests can
#: patch it and exercise the backoff schedule without real waiting.
_sleep: Callable[[float], None] = time.sleep


def _download(url: str, timeout: float, retries: int,
              backoff: float) -> bytes:
    """Read ``url`` fully, retrying transient errors with backoff.

    Retries cover the network-shaped failures (``URLError`` — which
    subsumes HTTP errors and DNS/connection resets — plus bare
    ``OSError`` timeouts); anything else propagates immediately.  The
    final attempt's exception is re-raised with the attempt count in a
    :class:`~repro.errors.ConfigurationError` so sweep logs show the
    fetch was retried, not flaky.
    """
    if retries < 1:
        raise ConfigurationError(f"retries must be >= 1, got {retries}")
    last: Optional[BaseException] = None
    for attempt in range(retries):
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return response.read()
        except (urllib.error.URLError, OSError) as exc:
            last = exc
            if attempt + 1 < retries:
                _sleep(backoff * (2 ** attempt))
    raise ConfigurationError(
        f"failed to fetch {url!r} after {retries} attempts: {last}"
    ) from last


def fetch_trace(name_or_url: Union[str, Path], *,
                cache_dir: Union[None, str, Path] = None,
                refresh: bool = False,
                timeout: float = FETCH_TIMEOUT,
                retries: int = FETCH_RETRIES,
                backoff: float = FETCH_BACKOFF) -> Path:
    """Download-and-cache a workload trace; return the local ``.swf`` path.

    ``name_or_url`` is a :data:`KNOWN_TRACES` short name (``"KTH-SP2"``),
    any URL to an SWF file (``.gz`` is decompressed transparently), or a
    local filesystem path (returned as-is).  Downloads land in
    ``cache_dir`` (default :func:`default_cache_dir`) under the trace's
    file name; a cached copy short-circuits the network entirely, so
    replays against archive traces are a one-time download.  ``refresh``
    forces a re-download.

    The download is written to a uniquely named temporary sibling and
    atomically renamed into place, so an interrupted fetch never leaves a
    truncated trace in the cache and concurrent fetches (e.g. two sweep
    workers racing on a cold cache) cannot corrupt each other — the last
    rename wins with a complete file either way.

    Transient network failures are retried up to ``retries`` times with
    exponential backoff (``backoff * 2**attempt`` seconds between
    attempts); exhausting the attempts raises a
    :class:`~repro.errors.ConfigurationError` carrying the last error.
    """
    url = KNOWN_TRACES.get(str(name_or_url), str(name_or_url))
    if "://" not in url:
        path = Path(url)
        if not path.exists():
            raise ConfigurationError(
                f"trace {name_or_url!r} is neither a known archive trace "
                f"({sorted(KNOWN_TRACES)}), a URL, nor an existing file"
            )
        return path

    filename = Path(urlsplit(url).path).name
    gzipped = filename.endswith(".gz")
    if gzipped:
        filename = filename[: -len(".gz")]
    if not filename:
        raise ConfigurationError(f"cannot derive a file name from {url!r}")

    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    target = directory / filename
    if target.exists() and not refresh:
        return target

    directory.mkdir(parents=True, exist_ok=True)
    payload = _download(url, timeout, retries, backoff)
    if gzipped:
        payload = gzip.decompress(payload)
    fd, partial_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".part", dir=directory
    )
    partial = Path(partial_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        partial.replace(target)
    except BaseException:
        partial.unlink(missing_ok=True)
        raise
    return target


def load_trace(name_or_url: Union[str, Path], *,
               cache_dir: Union[None, str, Path] = None,
               refresh: bool = False,
               timeout: float = FETCH_TIMEOUT,
               retries: int = FETCH_RETRIES,
               backoff: float = FETCH_BACKOFF) -> SWFTrace:
    """Fetch (cached) and parse a trace in one call."""
    return load_swf(fetch_trace(name_or_url, cache_dir=cache_dir,
                                refresh=refresh, timeout=timeout,
                                retries=retries, backoff=backoff))


def records_from_specs(specs: Iterable[TraceJobSpec]) -> List[SWFRecord]:
    """Back-convert job specs to minimal SWF records (for writing tools)."""
    return [
        SWFRecord(
            job_id=spec.job_id,
            submit_time=spec.arrival_time,
            run_time=spec.runtime,
            used_procs=spec.cores,
            requested_procs=spec.cores,
            requested_time=spec.estimated_runtime,
            status=1,
            user_id=spec.user,
            executable=spec.app,
            queue=spec.priority,
        )
        for spec in specs
    ]
