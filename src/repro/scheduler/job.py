"""Batch jobs.

A :class:`Job` wraps one workflow with the batch-scheduling metadata a
cluster scheduler needs: how many cores it reserves on a node, when it
arrives in the queue, and a runtime estimate (user-supplied in real batch
systems; defaulting here to the workflow's aggregate CPU time) used by the
shortest-job-first and EASY-backfilling policies.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.simulator.workflow import Workflow


class Job:
    """One batch job: a workflow plus its scheduling metadata.

    Parameters
    ----------
    workflow:
        The workflow executed when the job is dispatched.
    cores:
        Cores the job reserves on the node it is placed on (the job must
        fit on a single node).
    arrival_time:
        Simulated time at which the job enters the queue.
    estimated_runtime:
        Runtime estimate in seconds, used by SJF ordering and backfilling
        reservations.  Defaults to the workflow's total CPU time (a crude
        but deterministic stand-in for user-provided walltime requests).
    priority:
        Priority class of the job (higher runs first under the priority
        policies; the preemptive policy may suspend strictly lower
        priority jobs to start this one).
    label:
        Application label used in traces; defaults to the workflow name.
    """

    def __init__(self, workflow: Workflow, *, cores: int = 1,
                 arrival_time: float = 0.0,
                 estimated_runtime: Optional[float] = None,
                 priority: int = 0,
                 label: Optional[str] = None):
        if cores < 1 or int(cores) != cores:
            raise ConfigurationError(
                f"job {label or workflow.name!r}: cores must be a positive "
                f"integer, got {cores}"
            )
        if arrival_time < 0:
            raise ConfigurationError(
                f"job {label or workflow.name!r}: arrival_time must be >= 0"
            )
        if estimated_runtime is not None and estimated_runtime <= 0:
            raise ConfigurationError(
                f"job {label or workflow.name!r}: estimated_runtime must be positive"
            )
        if int(priority) != priority:
            raise ConfigurationError(
                f"job {label or workflow.name!r}: priority must be an integer"
            )
        self.workflow = workflow
        self.cores = int(cores)
        self.arrival_time = float(arrival_time)
        self.priority = int(priority)
        self.label = label or workflow.name
        if estimated_runtime is None:
            estimated_runtime = sum(task.cpu_time() for task in workflow.tasks)
        self.estimated_runtime = max(float(estimated_runtime), 1e-6)

        #: Identifier assigned by the scheduler at submission.
        self.id: Optional[int] = None
        #: Name of the node the job was dispatched to.
        self.node_name: Optional[str] = None
        #: Simulated time the job first started executing.
        self.start_time: Optional[float] = None
        #: Simulated time the current (or last) run segment started.
        self.last_start_time: Optional[float] = None
        #: Simulated time the job completed.
        self.end_time: Optional[float] = None
        #: Seconds actually spent running (excludes suspended time).
        self.run_seconds: float = 0.0
        #: Number of times the job was preempted.
        self.preemptions: int = 0
        #: Number of times the job was crash-restarted (its node failed
        #: while it ran and it was rolled back and requeued).
        self.restarts: int = 0
        #: After a preemption the job resumes on the node holding its
        #: checkpoint (and its warm page cache); ``None`` = any node.
        self.pinned_node: Optional[str] = None

    # -------------------------------------------------------------- queries
    def input_files(self) -> List[File]:
        """External input files of the job's workflow (for locality scoring)."""
        return self.workflow.input_files()

    @property
    def input_bytes(self) -> float:
        """Total bytes of the job's external input files."""
        return sum(f.size for f in self.input_files())

    def __repr__(self) -> str:
        return (
            f"<Job {self.label!r} cores={self.cores} "
            f"prio={self.priority} "
            f"arrival={self.arrival_time:.3g} "
            f"est={self.estimated_runtime:.3g}s>"
        )
