"""Pluggable placement strategies.

Once a policy has picked a job, the placement strategy picks the node it
runs on, among the nodes with enough free cores:

* :class:`RoundRobinPlacement` — cycle through the nodes;
* :class:`LeastLoadedPlacement` — most free cores first;
* :class:`CacheLocalityPlacement` — the paper-specific strategy: score each
  node by how many bytes of the job's input files are already resident in
  that node's page cache (via the node's
  :class:`~repro.pagecache.memory_manager.MemoryManager`), and send the job
  where its data is hot.  Cold datasets are spread by a stable hash of the
  input-file names, which doubles as dataset/node affinity: the second job
  over a dataset lands on the node the first one warmed.
"""

from __future__ import annotations

import zlib
from typing import Dict, Sequence, TYPE_CHECKING, Tuple, Union

from repro.errors import ConfigurationError
from repro.scheduler.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scheduler.cluster import NodeState


class PlacementStrategy:
    """Base class of placement strategies."""

    #: Registry name of the strategy.
    name = "placement"

    def select_node(self, job: Job, candidates: Sequence["NodeState"],
                    now: float = 0.0) -> "NodeState":
        """Choose one of ``candidates`` (non-empty, all fit the job)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class RoundRobinPlacement(PlacementStrategy):
    """Cycle through the eligible nodes in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select_node(self, job: Job, candidates: Sequence["NodeState"],
                    now: float = 0.0) -> "NodeState":
        node = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return node


class LeastLoadedPlacement(PlacementStrategy):
    """Most free cores first (ties: fewest running jobs, then node name)."""

    name = "least-loaded"

    def select_node(self, job: Job, candidates: Sequence["NodeState"],
                    now: float = 0.0) -> "NodeState":
        return min(
            candidates,
            key=lambda node: (-node.free_cores, node.n_running, node.name),
        )


def _stable_hash(key: str) -> int:
    """Deterministic string hash (Python's ``hash`` is salted per process)."""
    return zlib.crc32(key.encode("utf-8"))


class CacheLocalityPlacement(PlacementStrategy):
    """Place jobs where their input bytes are already in the page cache.

    Each candidate node is scored by the number of bytes of the job's
    input files currently resident in the node's page cache; the job goes
    to the highest-scoring node (ties broken by load, then name).  When no
    candidate holds any input byte (cold dataset, or the warm node is
    full), the node is chosen by rendezvous (highest-random-weight)
    hashing of ``(dataset, node)``: every node has a fixed per-dataset
    weight, and the heaviest *available* node wins.  Jobs over the same
    dataset therefore keep landing on the same node whenever it has room —
    regardless of which other nodes happen to be busy — so hash affinity
    bootstraps cache affinity.
    """

    name = "cache"

    def __init__(self) -> None:
        #: Memoized rendezvous weights, keyed by ``(dataset_key, node)``.
        #: Bounded by #datasets × #nodes, and hit on every cold dispatch —
        #: without it each dispatch re-hashed every candidate node.
        self._weights: Dict[Tuple[str, str], int] = {}

    def score(self, job: Job, node: "NodeState") -> float:
        """Bytes of the job's input files cached on ``node``."""
        return node.cached_bytes_of(job.input_files())

    def _weight(self, dataset_key: str, node_name: str) -> int:
        key = (dataset_key, node_name)
        weight = self._weights.get(key)
        if weight is None:
            weight = self._weights[key] = _stable_hash(
                f"{dataset_key}|{node_name}"
            )
        return weight

    def select_node(self, job: Job, candidates: Sequence["NodeState"],
                    now: float = 0.0) -> "NodeState":
        # Dispatch hot path: one pass over the candidates, with the job's
        # input-file list materialised once (``job.input_files()`` builds
        # a fresh list per call, and the old per-node ``self.score(job,
        # node)`` rebuilt it for every candidate).  Selection semantics
        # are unchanged: highest cached-byte score wins, ties broken by
        # (most free cores, fewest running jobs, name) keeping the
        # earliest candidate on full ties, exactly as the old
        # build-then-min implementation did.
        files = job.input_files()
        best_node = None
        best_score = 0.0
        best_tie = None
        for node in candidates:
            score = node.cached_bytes_of(files)
            if score <= 0.0:
                continue
            tie = (-node.free_cores, node.n_running, node.name)
            if (best_node is None or score > best_score
                    or (score == best_score and tie < best_tie)):
                best_node, best_score, best_tie = node, score, tie
        if best_node is not None:
            return best_node
        dataset_key = "|".join(sorted(f.name for f in files))
        return max(
            candidates,
            key=lambda node: (self._weight(dataset_key, node.name), node.name),
        )


class FailureAwarePlacement(CacheLocalityPlacement):
    """Cache locality, discounted by a node's failure history.

    Same scoring as :class:`CacheLocalityPlacement`, but each node's
    cached-byte score is multiplied by ``1 / (1 + penalty * n_failures)``:
    a node that keeps crashing loses its locality advantage — its cache is
    cold after every crash anyway, and work placed there keeps being
    rolled back.  With no failure history (or ``penalty=0``) the strategy
    degenerates to plain cache locality, including the rendezvous-hash
    cold path.

    Parameters
    ----------
    penalty:
        Discount weight per recorded crash (>= 0, default 1.0).
    """

    name = "failure-aware"

    def __init__(self, penalty: float = 1.0) -> None:
        super().__init__()
        if penalty < 0:
            raise ConfigurationError(
                f"failure-aware placement: penalty must be >= 0, got {penalty}"
            )
        self.penalty = float(penalty)

    def score(self, job: Job, node: "NodeState") -> float:
        score = super().score(job, node)
        return score / (1.0 + self.penalty * node.n_failures)

    def select_node(self, job: Job, candidates: Sequence["NodeState"],
                    now: float = 0.0) -> "NodeState":
        files = job.input_files()
        best_node = None
        best_score = 0.0
        best_tie = None
        for node in candidates:
            score = node.cached_bytes_of(files)
            score /= 1.0 + self.penalty * node.n_failures
            if score <= 0.0:
                continue
            tie = (-node.free_cores, node.n_running, node.name)
            if (best_node is None or score > best_score
                    or (score == best_score and tie < best_tie)):
                best_node, best_score, best_tie = node, score, tie
        if best_node is not None:
            return best_node
        # Cold path: rendezvous hashing, but crash-prone nodes are only
        # picked when every healthier candidate is unavailable.
        dataset_key = "|".join(sorted(f.name for f in files))
        return max(
            candidates,
            key=lambda node: (-node.n_failures,
                              self._weight(dataset_key, node.name),
                              node.name),
        )


#: Strategies constructible by name.
PLACEMENTS = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    CacheLocalityPlacement.name: CacheLocalityPlacement,
    "cache-aware": CacheLocalityPlacement,
    FailureAwarePlacement.name: FailureAwarePlacement,
}


def make_placement(placement: Union[str, PlacementStrategy]) -> PlacementStrategy:
    """Resolve a placement name (or pass an instance through)."""
    if isinstance(placement, PlacementStrategy):
        return placement
    try:
        return PLACEMENTS[placement]()
    except KeyError:
        raise ConfigurationError(
            f"unknown placement strategy {placement!r}; "
            f"known strategies: {sorted(set(PLACEMENTS))}"
        ) from None
