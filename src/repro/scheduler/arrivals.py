"""Job arrival processes.

Batch workloads are usually modelled either as a Poisson process (open
queueing model) or replayed from a recorded trace.  Both generators produce
a plain list of non-decreasing arrival times; the experiment code then
attaches a workflow to each arrival.  Every generator is deterministic: the
Poisson process draws from a :class:`~repro.rng.DeterministicRNG`, and a
trace replays verbatim.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.rng import DeterministicRNG


class ArrivalProcess:
    """Base class of arrival-time generators."""

    def generate(self, n_jobs: int) -> List[float]:
        """Return ``n_jobs`` non-decreasing arrival times (seconds)."""
        raise NotImplementedError


class PoissonArrivalProcess(ArrivalProcess):
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps.

    Parameters
    ----------
    rate:
        Mean number of arrivals per simulated second.
    rng:
        Seeded random source; pass a :meth:`~repro.rng.DeterministicRNG.spawn`
        child so arrival draws are isolated from other random choices.
    start:
        Time of the first possible arrival (gaps accumulate from here).
    """

    def __init__(self, rate: float, rng: DeterministicRNG, start: float = 0.0):
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.rate = float(rate)
        self.rng = rng
        self.start = float(start)

    def generate(self, n_jobs: int) -> List[float]:
        if n_jobs < 0:
            raise ConfigurationError("n_jobs must be >= 0")
        times: List[float] = []
        now = self.start
        for _ in range(n_jobs):
            now += self.rng.exponential(self.rate)
            times.append(now)
        return times

    def __repr__(self) -> str:
        return f"<PoissonArrivalProcess rate={self.rate:.3g}/s rng={self.rng!r}>"


class TraceArrivalProcess(ArrivalProcess):
    """Replay of recorded arrival times.

    Parameters
    ----------
    times:
        The recorded arrival times.  They are sorted defensively; negative
        times are rejected.
    """

    def __init__(self, times: Sequence[float]):
        values = sorted(float(t) for t in times)
        if values and values[0] < 0:
            raise ConfigurationError("trace arrival times must be >= 0")
        self.times = values

    def generate(self, n_jobs: int) -> List[float]:
        if n_jobs > len(self.times):
            raise ConfigurationError(
                f"trace holds {len(self.times)} arrivals, {n_jobs} requested"
            )
        return list(self.times[:n_jobs])

    def __repr__(self) -> str:
        return f"<TraceArrivalProcess n={len(self.times)}>"


class SubmissionQueue:
    """Bounded thread-safe queue feeding a live arrival process.

    The service-mode counterpart of the offline generators above: client
    threads :meth:`offer` submissions as they arrive over the wire, and
    the simulation worker :meth:`drain`\\ s them into the streaming
    scheduler.  The bound is the backpressure contract — :meth:`offer`
    never blocks and returns ``False`` when the queue is full, so the
    caller can reject the submission explicitly (HTTP 429 + Retry-After)
    instead of queueing unbounded work or dropping it silently.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ConfigurationError(
                f"submission queue capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: Submissions rejected because the queue was full (backpressure).
        self.n_rejected = 0
        #: Submissions accepted so far.
        self.n_accepted = 0

    def offer(self, item) -> bool:
        """Enqueue ``item`` if the bound allows; never blocks."""
        with self._ready:
            if len(self._items) >= self.capacity:
                self.n_rejected += 1
                return False
            self._items.append(item)
            self.n_accepted += 1
            self._ready.notify()
            return True

    def drain(self, timeout: Optional[float] = None) -> list:
        """Dequeue everything currently queued, in arrival order.

        Blocks for up to ``timeout`` seconds (forever when ``None``) for
        the first item; returns ``[]`` on timeout.
        """
        with self._ready:
            if not self._items:
                self._ready.wait(timeout)
            items = list(self._items)
            self._items.clear()
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
