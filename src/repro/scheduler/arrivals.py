"""Job arrival processes.

Batch workloads are usually modelled either as a Poisson process (open
queueing model) or replayed from a recorded trace.  Both generators produce
a plain list of non-decreasing arrival times; the experiment code then
attaches a workflow to each arrival.  Every generator is deterministic: the
Poisson process draws from a :class:`~repro.rng.DeterministicRNG`, and a
trace replays verbatim.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.rng import DeterministicRNG


class ArrivalProcess:
    """Base class of arrival-time generators."""

    def generate(self, n_jobs: int) -> List[float]:
        """Return ``n_jobs`` non-decreasing arrival times (seconds)."""
        raise NotImplementedError


class PoissonArrivalProcess(ArrivalProcess):
    """Poisson arrivals: i.i.d. exponential inter-arrival gaps.

    Parameters
    ----------
    rate:
        Mean number of arrivals per simulated second.
    rng:
        Seeded random source; pass a :meth:`~repro.rng.DeterministicRNG.spawn`
        child so arrival draws are isolated from other random choices.
    start:
        Time of the first possible arrival (gaps accumulate from here).
    """

    def __init__(self, rate: float, rng: DeterministicRNG, start: float = 0.0):
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.rate = float(rate)
        self.rng = rng
        self.start = float(start)

    def generate(self, n_jobs: int) -> List[float]:
        if n_jobs < 0:
            raise ConfigurationError("n_jobs must be >= 0")
        times: List[float] = []
        now = self.start
        for _ in range(n_jobs):
            now += self.rng.exponential(self.rate)
            times.append(now)
        return times

    def __repr__(self) -> str:
        return f"<PoissonArrivalProcess rate={self.rate:.3g}/s rng={self.rng!r}>"


class TraceArrivalProcess(ArrivalProcess):
    """Replay of recorded arrival times.

    Parameters
    ----------
    times:
        The recorded arrival times.  They are sorted defensively; negative
        times are rejected.
    """

    def __init__(self, times: Sequence[float]):
        values = sorted(float(t) for t in times)
        if values and values[0] < 0:
            raise ConfigurationError("trace arrival times must be >= 0")
        self.times = values

    def generate(self, n_jobs: int) -> List[float]:
        if n_jobs > len(self.times):
            raise ConfigurationError(
                f"trace holds {len(self.times)} arrivals, {n_jobs} requested"
            )
        return list(self.times[:n_jobs])

    def __repr__(self) -> str:
        return f"<TraceArrivalProcess n={len(self.times)}>"
