"""Scheduler metrics.

The classic batch-scheduling metrics, computed from the per-job records the
:class:`~repro.scheduler.cluster.ClusterScheduler` collects:

* **wait time** — time spent in the queue before dispatch;
* **bounded slowdown** — turnaround over runtime, bounded for short jobs;
* **utilization** — reserved core-seconds over available core-seconds;
* **throughput** — completed jobs per simulated second;
* **per-priority-class summaries** — wait time and bounded slowdown per
  priority class (:meth:`SchedulerMetrics.priority_class_metrics`), the
  quantities a preemptive priority policy trades between classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default reference runtime (seconds) of the bounded-slowdown metric:
#: ``max(1, turnaround / max(runtime, tau))`` bounds the slowdown of very
#: short jobs so they do not dominate the mean.
BOUNDED_SLOWDOWN_TAU = 10.0


def clamped_wait(start_time: float, arrival_time: float) -> float:
    """Queueing delay ``start - arrival``, clamped to zero.

    A replayed trace can submit jobs "in the past" (arrival marginally
    after the dispatch tick within the scheduler's epsilon), and a wait
    must never be negative.  Every consumer of a wait — job records, the
    observer histograms, the priority-weighted eviction policy's scoring —
    goes through this one clamp.
    """
    return max(0.0, start_time - arrival_time)


@dataclass
class JobRecord:
    """Immutable record of one completed job."""

    job_id: int
    label: str
    node: str
    cores: int
    arrival_time: float
    start_time: float
    end_time: float
    estimated_runtime: float
    #: Priority class of the job (higher = more urgent).
    priority: int = 0
    #: Number of times the job was preempted before completing.
    preemptions: int = 0
    #: Number of times the job was crash-restarted (its node failed while
    #: it ran and it was checkpoint-rolled-back and requeued).
    restarts: int = 0
    #: Seconds actually spent running; ``None`` means the job ran in one
    #: uninterrupted segment (``end - start``).
    run_seconds: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Queueing delay before the first dispatch (see :func:`clamped_wait`)."""
        return clamped_wait(self.start_time, self.arrival_time)

    @property
    def runtime(self) -> float:
        """Execution time on the node (excluding suspended time)."""
        if self.run_seconds is not None:
            return self.run_seconds
        return self.end_time - self.start_time

    @property
    def turnaround(self) -> float:
        """Arrival-to-completion time."""
        return self.end_time - self.arrival_time

    def bounded_slowdown(self, tau: float = BOUNDED_SLOWDOWN_TAU) -> float:
        """Bounded slowdown ``max(1, turnaround / max(runtime, tau))``."""
        return max(1.0, self.turnaround / max(self.runtime, tau))


@dataclass
class SchedulerMetrics:
    """Aggregate scheduling metrics of one cluster simulation."""

    #: One record per completed job.
    records: List[JobRecord] = field(default_factory=list)
    #: Total cores of the cluster (sum over nodes).
    total_cores: int = 0
    #: First job arrival (0 when no jobs completed).
    first_arrival: float = 0.0
    #: Last job completion (0 when no jobs completed).
    last_completion: float = 0.0
    #: Node crashes injected over the run (0 in fault-free runs).
    n_node_failures: int = 0
    #: Crash-driven job restarts (rollback + requeue) over the run.
    n_job_restarts: int = 0
    #: Compute seconds destroyed by crashes: work a job had done past its
    #: last checkpoint when its node failed, which it must redo.
    lost_work_seconds: float = 0.0

    # ------------------------------------------------------------------- api
    @property
    def n_jobs(self) -> int:
        """Number of completed jobs."""
        return len(self.records)

    @property
    def makespan(self) -> float:
        """Span from the first arrival to the last completion."""
        return max(0.0, self.last_completion - self.first_arrival)

    @property
    def mean_wait_time(self) -> float:
        """Mean queueing delay over all jobs."""
        if not self.records:
            return 0.0
        return sum(r.wait_time for r in self.records) / len(self.records)

    @property
    def max_wait_time(self) -> float:
        """Worst queueing delay."""
        if not self.records:
            return 0.0
        return max(r.wait_time for r in self.records)

    @property
    def mean_turnaround(self) -> float:
        """Mean arrival-to-completion time."""
        if not self.records:
            return 0.0
        return sum(r.turnaround for r in self.records) / len(self.records)

    def mean_bounded_slowdown(self, tau: float = BOUNDED_SLOWDOWN_TAU) -> float:
        """Mean bounded slowdown over all jobs."""
        if not self.records:
            return 0.0
        return sum(r.bounded_slowdown(tau) for r in self.records) / len(self.records)

    @property
    def utilization(self) -> float:
        """Reserved core-seconds over available core-seconds.

        Computed against the scheduler makespan; 0 when no job completed.
        """
        span = self.makespan
        if span <= 0 or self.total_cores <= 0:
            return 0.0
        used = sum(r.cores * r.runtime for r in self.records)
        return used / (self.total_cores * span)

    @property
    def throughput(self) -> float:
        """Completed jobs per simulated second of makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return len(self.records) / span

    @property
    def jobs_per_node(self) -> Dict[str, int]:
        """Number of jobs each node executed."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.node] = counts.get(record.node, 0) + 1
        return counts

    @property
    def n_preemptions(self) -> int:
        """Total preemptions suffered over all completed jobs."""
        return sum(record.preemptions for record in self.records)

    @property
    def priority_classes(self) -> List[int]:
        """Distinct priority classes among the records, descending."""
        return sorted({record.priority for record in self.records}, reverse=True)

    def records_of_class(self, priority: int) -> List[JobRecord]:
        """Records of the jobs in one priority class."""
        return [record for record in self.records if record.priority == priority]

    def priority_class_metrics(self, tau: float = BOUNDED_SLOWDOWN_TAU,
                               ) -> Dict[int, "PriorityClassMetrics"]:
        """Per-priority-class summaries, keyed by priority (descending)."""
        summaries: Dict[int, PriorityClassMetrics] = {}
        for priority in self.priority_classes:
            records = self.records_of_class(priority)
            waits = [record.wait_time for record in records]
            slowdowns = [record.bounded_slowdown(tau) for record in records]
            summaries[priority] = PriorityClassMetrics(
                priority=priority,
                n_jobs=len(records),
                mean_wait_time=sum(waits) / len(waits),
                max_wait_time=max(waits),
                mean_turnaround=(
                    sum(record.turnaround for record in records) / len(records)
                ),
                mean_bounded_slowdown=sum(slowdowns) / len(slowdowns),
                max_bounded_slowdown=max(slowdowns),
                preemptions=sum(record.preemptions for record in records),
            )
        return summaries

    def as_dict(self) -> Dict[str, float]:
        """Scalar summary used by the experiment reports."""
        return {
            "n_jobs": self.n_jobs,
            "makespan": self.makespan,
            "mean_wait_time": self.mean_wait_time,
            "max_wait_time": self.max_wait_time,
            "mean_turnaround": self.mean_turnaround,
            "mean_bounded_slowdown": self.mean_bounded_slowdown(),
            "utilization": self.utilization,
            "throughput": self.throughput,
            "n_preemptions": self.n_preemptions,
            "n_node_failures": self.n_node_failures,
            "n_job_restarts": self.n_job_restarts,
            "lost_work_seconds": self.lost_work_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"<SchedulerMetrics jobs={self.n_jobs} "
            f"makespan={self.makespan:.3g}s "
            f"wait={self.mean_wait_time:.3g}s "
            f"util={self.utilization:.1%}>"
        )


@dataclass
class PriorityClassMetrics:
    """Summary of one priority class of completed jobs."""

    priority: int
    n_jobs: int
    mean_wait_time: float
    max_wait_time: float
    mean_turnaround: float
    mean_bounded_slowdown: float
    max_bounded_slowdown: float
    #: Preemptions suffered by the class (victims, not beneficiaries).
    preemptions: int

    def as_dict(self) -> Dict[str, float]:
        """Scalar summary, shaped like :meth:`SchedulerMetrics.as_dict`."""
        return {
            "priority": self.priority,
            "n_jobs": self.n_jobs,
            "mean_wait_time": self.mean_wait_time,
            "max_wait_time": self.max_wait_time,
            "mean_turnaround": self.mean_turnaround,
            "mean_bounded_slowdown": self.mean_bounded_slowdown,
            "max_bounded_slowdown": self.max_bounded_slowdown,
            "preemptions": self.preemptions,
        }
