"""Cluster batch-scheduler subsystem.

Turns the one-workflow-per-host simulator into a multi-node batch system:

* :class:`~repro.scheduler.job.Job` — a workflow plus batch metadata
  (cores, arrival time, runtime estimate, priority);
* arrival generators (:mod:`repro.scheduler.arrivals`) — seeded Poisson
  and trace replay;
* SWF traces (:mod:`repro.scheduler.swf`) — parser/writer for the
  Standard Workload Format with load/runtime/core scaling knobs, feeding
  real-workload replay;
* scheduling policies (:mod:`repro.scheduler.policies`) — FIFO, shortest
  job first, EASY backfilling, and preemptive priority
  (checkpoint-and-requeue suspension of lower-priority jobs);
* placement strategies (:mod:`repro.scheduler.placement`) — round-robin,
  least-loaded, and cache-locality-aware (scores nodes by how many of a
  job's input bytes sit in the node's page cache);
* the :class:`~repro.scheduler.cluster.ClusterScheduler` DES process and
  per-node state (:mod:`repro.scheduler.cluster`);
* metrics (:mod:`repro.scheduler.metrics`) — wait time, bounded slowdown,
  utilization, throughput, and per-priority-class summaries.
"""

from repro.scheduler.arrivals import (
    ArrivalProcess,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from repro.scheduler.cluster import ClusterScheduler, NodeState
from repro.scheduler.job import Job
from repro.scheduler.metrics import (
    JobRecord,
    PriorityClassMetrics,
    SchedulerMetrics,
)
from repro.scheduler.placement import (
    CacheLocalityPlacement,
    LeastLoadedPlacement,
    PlacementStrategy,
    RoundRobinPlacement,
    make_placement,
)
from repro.scheduler.policies import (
    Decision,
    EasyBackfillPolicy,
    FIFOPolicy,
    PreemptionPlan,
    PreemptivePriorityPolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
    make_policy,
)
from repro.scheduler.swf import (
    KNOWN_TRACES,
    SWFRecord,
    SWFTrace,
    TraceJobSpec,
    dump_swf,
    fetch_trace,
    load_swf,
    load_trace,
    parse_swf,
    save_swf,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "TraceArrivalProcess",
    "ClusterScheduler",
    "NodeState",
    "Job",
    "JobRecord",
    "PriorityClassMetrics",
    "SchedulerMetrics",
    "PlacementStrategy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "CacheLocalityPlacement",
    "make_placement",
    "SchedulingPolicy",
    "FIFOPolicy",
    "ShortestJobFirstPolicy",
    "EasyBackfillPolicy",
    "PreemptivePriorityPolicy",
    "PreemptionPlan",
    "Decision",
    "make_policy",
    "SWFRecord",
    "SWFTrace",
    "TraceJobSpec",
    "parse_swf",
    "load_swf",
    "dump_swf",
    "save_swf",
    "KNOWN_TRACES",
    "fetch_trace",
    "load_trace",
]
