"""Cluster batch-scheduler subsystem.

Turns the one-workflow-per-host simulator into a multi-node batch system:

* :class:`~repro.scheduler.job.Job` — a workflow plus batch metadata
  (cores, arrival time, runtime estimate);
* arrival generators (:mod:`repro.scheduler.arrivals`) — seeded Poisson
  and trace replay;
* scheduling policies (:mod:`repro.scheduler.policies`) — FIFO, shortest
  job first, EASY backfilling;
* placement strategies (:mod:`repro.scheduler.placement`) — round-robin,
  least-loaded, and cache-locality-aware (scores nodes by how many of a
  job's input bytes sit in the node's page cache);
* the :class:`~repro.scheduler.cluster.ClusterScheduler` DES process and
  per-node state (:mod:`repro.scheduler.cluster`);
* metrics (:mod:`repro.scheduler.metrics`) — wait time, bounded slowdown,
  utilization and throughput.
"""

from repro.scheduler.arrivals import (
    ArrivalProcess,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from repro.scheduler.cluster import ClusterScheduler, NodeState
from repro.scheduler.job import Job
from repro.scheduler.metrics import JobRecord, SchedulerMetrics
from repro.scheduler.placement import (
    CacheLocalityPlacement,
    LeastLoadedPlacement,
    PlacementStrategy,
    RoundRobinPlacement,
    make_placement,
)
from repro.scheduler.policies import (
    Decision,
    EasyBackfillPolicy,
    FIFOPolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
    make_policy,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "TraceArrivalProcess",
    "ClusterScheduler",
    "NodeState",
    "Job",
    "JobRecord",
    "SchedulerMetrics",
    "PlacementStrategy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "CacheLocalityPlacement",
    "make_placement",
    "SchedulingPolicy",
    "FIFOPolicy",
    "ShortestJobFirstPolicy",
    "EasyBackfillPolicy",
    "Decision",
    "make_policy",
]
