"""Pluggable scheduling policies.

A scheduling policy decides *which* queued job starts next; the placement
strategy (:mod:`repro.scheduler.placement`) then decides *where*.  Policies
see the queue and the per-node free cores and return at most one job per
call; the scheduler calls them repeatedly until no further job can start.

Three classic batch policies are provided:

* :class:`FIFOPolicy` — strict arrival order; the head of the queue blocks
  everything behind it until it fits;
* :class:`ShortestJobFirstPolicy` — jobs ordered by estimated runtime;
* :class:`EasyBackfillPolicy` — FIFO with EASY backfilling: the head job
  gets a reservation at the earliest time a node can fit it, and shorter
  jobs may jump ahead if starting them now cannot delay that reservation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING, Tuple, Union

from repro.errors import ConfigurationError
from repro.scheduler.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scheduler.cluster import NodeState

#: Scheduling tolerance in seconds.
_EPSILON = 1e-9


class Decision:
    """One dispatch decision: a job plus the nodes it may be placed on.

    ``allowed_nodes`` is ``None`` when any node with enough free cores is
    acceptable; backfilling restricts it to protect the head reservation.
    """

    __slots__ = ("job", "allowed_nodes")

    def __init__(self, job: Job, allowed_nodes: Optional[List["NodeState"]] = None):
        self.job = job
        self.allowed_nodes = allowed_nodes

    def __repr__(self) -> str:
        nodes = (
            "any" if self.allowed_nodes is None
            else [n.name for n in self.allowed_nodes]
        )
        return f"<Decision job={self.job.label!r} nodes={nodes}>"


def fitting_nodes(job: Job, nodes: Sequence["NodeState"]) -> List["NodeState"]:
    """Nodes that can start ``job`` right now."""
    return [node for node in nodes if node.free_cores >= job.cores]


class SchedulingPolicy:
    """Base class: strict head-of-line scheduling over :meth:`order`."""

    #: Registry name of the policy.
    name = "policy"

    def order(self, queue: Sequence[Job]) -> List[Job]:
        """Priority order of the queue (head first)."""
        raise NotImplementedError

    def select(self, queue: Sequence[Job], nodes: Sequence["NodeState"],
               now: float) -> Optional[Decision]:
        """Pick the next job to start, or ``None`` if none may start now.

        The default behaviour is strict: only the head of :meth:`order` is
        considered, so a large job at the head blocks the queue (no
        starvation of wide jobs).
        """
        if not queue:
            return None
        head = self.order(queue)[0]
        if fitting_nodes(head, nodes):
            return Decision(head)
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FIFOPolicy(SchedulingPolicy):
    """First-in-first-out: jobs start strictly in arrival order."""

    name = "fifo"

    def order(self, queue: Sequence[Job]) -> List[Job]:
        return sorted(queue, key=lambda job: (job.arrival_time, job.id or 0))


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Shortest estimated runtime first (ties broken by arrival order)."""

    name = "sjf"

    def order(self, queue: Sequence[Job]) -> List[Job]:
        return sorted(
            queue,
            key=lambda job: (job.estimated_runtime, job.arrival_time, job.id or 0),
        )


class EasyBackfillPolicy(FIFOPolicy):
    """FIFO with EASY backfilling (per-node reservation variant).

    When the head job does not fit, it receives a reservation on the
    *shadow node* — the node that, according to the estimated runtimes of
    its running jobs, can first accumulate enough free cores.  A queued job
    may then backfill if it fits on some node right now and either

    * its estimated completion is no later than the reservation time
      (it will be gone before the head needs the cores), or
    * it can be placed on a node other than the shadow node (it cannot
      touch the reserved cores at all).

    Both conditions preserve the head job's reservation, the defining
    guarantee of EASY backfilling.  Estimates are taken at face value, as
    in real EASY schedulers; jobs overrunning their estimate simply push
    the reservation later at the next scheduling pass.
    """

    name = "easy"

    def select(self, queue: Sequence[Job], nodes: Sequence["NodeState"],
               now: float) -> Optional[Decision]:
        if not queue:
            return None
        ordered = self.order(queue)
        head = ordered[0]
        if fitting_nodes(head, nodes):
            return Decision(head)

        shadow_time, shadow_node = self._reservation(head, nodes, now)
        for job in ordered[1:]:
            candidates = fitting_nodes(job, nodes)
            if not candidates:
                continue
            if now + job.estimated_runtime <= shadow_time + _EPSILON:
                return Decision(job, candidates)
            off_shadow = [n for n in candidates if n is not shadow_node]
            if off_shadow:
                return Decision(job, off_shadow)
        return None

    @staticmethod
    def _reservation(job: Job, nodes: Sequence["NodeState"],
                     now: float) -> Tuple[float, Optional["NodeState"]]:
        """Earliest (time, node) at which some node can fit ``job``."""
        best_time = float("inf")
        best_node: Optional["NodeState"] = None
        for node in nodes:
            available = node.earliest_fit_time(job.cores, now)
            if available < best_time:
                best_time = available
                best_node = node
        return best_time, best_node


#: Policies constructible by name.
POLICIES = {
    FIFOPolicy.name: FIFOPolicy,
    ShortestJobFirstPolicy.name: ShortestJobFirstPolicy,
    "shortest-job-first": ShortestJobFirstPolicy,
    EasyBackfillPolicy.name: EasyBackfillPolicy,
    "easy-backfill": EasyBackfillPolicy,
}


def make_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {policy!r}; "
            f"known policies: {sorted(set(POLICIES))}"
        ) from None
