"""Pluggable scheduling policies.

A scheduling policy decides *which* queued job starts next; the placement
strategy (:mod:`repro.scheduler.placement`) then decides *where*.  Policies
see the queue and the per-node free cores and return at most one job per
call; the scheduler calls them repeatedly until no further job can start.

Three classic batch policies are provided:

* :class:`FIFOPolicy` — strict arrival order; the head of the queue blocks
  everything behind it until it fits;
* :class:`ShortestJobFirstPolicy` — jobs ordered by estimated runtime;
* :class:`EasyBackfillPolicy` — FIFO with EASY backfilling: the head job
  gets a reservation at the earliest time a node can fit it, and shorter
  jobs may jump ahead if starting them now cannot delay that reservation;
* :class:`PreemptivePriorityPolicy` — strict priority order, plus
  preemption: when the highest-priority queued job cannot start, the
  policy proposes a :class:`PreemptionPlan` suspending strictly lower
  priority running jobs (checkpoint-and-requeue) to make room.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING, Tuple, Union

from repro.errors import ConfigurationError
from repro.scheduler.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scheduler.cluster import NodeState

#: Scheduling tolerance in seconds.
_EPSILON = 1e-9


class Decision:
    """One dispatch decision: a job plus the nodes it may be placed on.

    ``allowed_nodes`` is ``None`` when any node with enough free cores is
    acceptable; backfilling restricts it to protect the head reservation.
    """

    __slots__ = ("job", "allowed_nodes")

    def __init__(self, job: Job, allowed_nodes: Optional[List["NodeState"]] = None):
        self.job = job
        self.allowed_nodes = allowed_nodes

    def __repr__(self) -> str:
        nodes = (
            "any" if self.allowed_nodes is None
            else [n.name for n in self.allowed_nodes]
        )
        return f"<Decision job={self.job.label!r} nodes={nodes}>"


def fitting_nodes(job: Job, nodes: Sequence["NodeState"]) -> List["NodeState"]:
    """Nodes that can start ``job`` right now.

    A previously preempted job is pinned to the node holding its
    checkpoint (``job.pinned_node``); only that node qualifies for it.
    Nodes that are down or draining (see :mod:`repro.faults`) never
    qualify.
    """
    return [
        node
        for node in nodes
        if node.available
        and node.free_cores >= job.cores
        and (job.pinned_node is None or node.name == job.pinned_node)
    ]


class SchedulingPolicy:
    """Base class: strict head-of-line scheduling over :meth:`order`."""

    #: Registry name of the policy.
    name = "policy"

    def order(self, queue: Sequence[Job], now: float = 0.0) -> List[Job]:
        """Priority order of the queue (head first) at time ``now``.

        Most policies order on static job attributes and ignore ``now``;
        time-dependent policies (priority aging) must receive it.
        """
        raise NotImplementedError

    def select(self, queue: Sequence[Job], nodes: Sequence["NodeState"],
               now: float) -> Optional[Decision]:
        """Pick the next job to start, or ``None`` if none may start now.

        The default behaviour is strict: only the head of :meth:`order` is
        considered, so a large job at the head blocks the queue (no
        starvation of wide jobs).
        """
        if not queue:
            return None
        head = self.order(queue, now)[0]
        if fitting_nodes(head, nodes):
            return Decision(head)
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FIFOPolicy(SchedulingPolicy):
    """First-in-first-out: jobs start strictly in arrival order."""

    name = "fifo"

    def order(self, queue: Sequence[Job], now: float = 0.0) -> List[Job]:
        return sorted(queue, key=lambda job: (job.arrival_time, job.id or 0))


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Shortest estimated runtime first (ties broken by arrival order)."""

    name = "sjf"

    def order(self, queue: Sequence[Job], now: float = 0.0) -> List[Job]:
        return sorted(
            queue,
            key=lambda job: (job.estimated_runtime, job.arrival_time, job.id or 0),
        )


class EasyBackfillPolicy(FIFOPolicy):
    """FIFO with EASY backfilling (per-node reservation variant).

    When the head job does not fit, it receives a reservation on the
    *shadow node* — the node that, according to the estimated runtimes of
    its running jobs, can first accumulate enough free cores.  A queued job
    may then backfill if it fits on some node right now and either

    * its estimated completion is no later than the reservation time
      (it will be gone before the head needs the cores), or
    * it can be placed on a node other than the shadow node (it cannot
      touch the reserved cores at all).

    Both conditions preserve the head job's reservation, the defining
    guarantee of EASY backfilling.  Estimates are taken at face value, as
    in real EASY schedulers; jobs overrunning their estimate simply push
    the reservation later at the next scheduling pass.
    """

    name = "easy"

    def select(self, queue: Sequence[Job], nodes: Sequence["NodeState"],
               now: float) -> Optional[Decision]:
        if not queue:
            return None
        ordered = self.order(queue, now)
        head = ordered[0]
        if fitting_nodes(head, nodes):
            return Decision(head)

        shadow_time, shadow_node = self._reservation(head, nodes, now)
        for job in ordered[1:]:
            candidates = fitting_nodes(job, nodes)
            if not candidates:
                continue
            if now + job.estimated_runtime <= shadow_time + _EPSILON:
                return Decision(job, candidates)
            off_shadow = [n for n in candidates if n is not shadow_node]
            if off_shadow:
                return Decision(job, off_shadow)
        return None

    @staticmethod
    def _reservation(job: Job, nodes: Sequence["NodeState"],
                     now: float) -> Tuple[float, Optional["NodeState"]]:
        """Earliest (time, node) at which some node can fit ``job``."""
        best_time = float("inf")
        best_node: Optional["NodeState"] = None
        for node in nodes:
            if not node.available:
                continue
            available = node.earliest_fit_time(job.cores, now)
            if available < best_time:
                best_time = available
                best_node = node
        return best_time, best_node


class PreemptionPlan:
    """A preemption proposal: start ``job`` on ``node`` after suspending
    ``victims`` (running jobs of strictly lower priority on that node)."""

    __slots__ = ("job", "node", "victims")

    def __init__(self, job: Job, node: "NodeState", victims: List[Job]):
        self.job = job
        self.node = node
        self.victims = victims

    def __repr__(self) -> str:
        return (
            f"<PreemptionPlan job={self.job.label!r} node={self.node.name!r} "
            f"victims={[victim.label for victim in self.victims]}>"
        )


class PreemptivePriorityPolicy(SchedulingPolicy):
    """Strict priority scheduling with preemption and optional aging.

    Queued jobs are ordered by descending *effective* priority (ties:
    arrival order).  When the head job cannot start anywhere,
    :meth:`plan_preemption` proposes suspending strictly lower priority
    running jobs on one node until the head fits.  The scheduler
    checkpoints the victims (checkpoint-and-requeue: completed tasks and
    compute progress are kept, minus a configurable lost-work penalty)
    and starts the head once their cores are released.

    Victim selection loses as little work as possible: the lowest
    priority jobs go first, and among equals the most recently started
    (least progress to checkpoint).  Among candidate nodes, the plan with
    the fewest victims wins, then the least total elapsed runtime lost.

    Priority aging bounds low-priority starvation: with ``aging_rate``
    :math:`r > 0`, a queued job's effective priority is ``priority + r *
    waiting_time``, so any job eventually outranks a stream of fresher
    high-priority arrivals and claims the head-of-line slot (the head is
    dispatched strictly first, so reaching the head guarantees the next
    fitting allocation).  Preemption compares the head's current
    effective priority against each running job's effective priority
    *frozen at its last dispatch*: the aging credit that earned an aged
    job its slot also protects the slot, otherwise a high-priority head
    would suspend the just-dispatched aged job at the same timestamp,
    which re-ages past the head and re-dispatches — a livelock.  An aged
    job never *initiates* preemption either (no running job has a lower
    effective priority than the credit that aged it to the head), so
    aging redistributes free cores, it does not add suspensions.  The
    default ``aging_rate=0.0`` makes both comparisons collapse to raw
    priorities, preserving strict priority semantics exactly.

    Parameters
    ----------
    aging_rate:
        Effective-priority points gained per second of queue waiting
        (default 0.0: no aging).  With priorities one class apart, a job
        overtakes the class above it after ``1 / aging_rate`` seconds of
        waiting.
    """

    name = "preemptive-priority"

    def __init__(self, aging_rate: float = 0.0):
        if aging_rate < 0:
            raise ConfigurationError("aging_rate must be >= 0")
        self.aging_rate = float(aging_rate)

    def effective_priority(self, job: Job, now: float) -> float:
        """The job's priority after aging credit for its waiting time."""
        waited = max(0.0, now - job.arrival_time)
        return job.priority + self.aging_rate * waited

    def _dispatched_priority(self, job: Job) -> float:
        """A running job's effective priority, frozen at its dispatch."""
        if job.last_start_time is None:
            return float(job.priority)
        return self.effective_priority(job, job.last_start_time)

    def order(self, queue: Sequence[Job], now: float = 0.0) -> List[Job]:
        return sorted(
            queue,
            key=lambda job: (
                -self.effective_priority(job, now),
                job.arrival_time,
                job.id or 0,
            ),
        )

    def plan_preemption(self, queue: Sequence[Job],
                        nodes: Sequence["NodeState"],
                        now: float) -> Optional["PreemptionPlan"]:
        """Propose victims for the head job, or ``None`` if hopeless."""
        if not queue:
            return None
        head = self.order(queue, now)[0]
        best_key: Optional[Tuple[int, float, str]] = None
        best_plan: Optional[PreemptionPlan] = None
        for node in nodes:
            if not node.available:
                continue
            if head.pinned_node is not None and node.name != head.pinned_node:
                continue
            if head.cores > node.total_cores:
                continue
            # The head preempts with its *raw* priority (aging earns free
            # cores, not suspensions); victims are protected by the
            # effective priority their dispatch was granted at.
            lower = sorted(
                (
                    job for job in node.running.values()
                    if self._dispatched_priority(job) < head.priority
                ),
                key=lambda job: (
                    job.priority,
                    now - (job.last_start_time if job.last_start_time is not None else now),
                    job.id or 0,
                ),
            )
            freed = node.free_cores
            victims: List[Job] = []
            for victim in lower:
                if freed >= head.cores:
                    break
                victims.append(victim)
                freed += victim.cores
            if freed < head.cores or not victims:
                continue
            lost = sum(
                now - (victim.last_start_time if victim.last_start_time is not None else now)
                for victim in victims
            )
            key = (len(victims), lost, node.name)
            if best_key is None or key < best_key:
                best_key = key
                best_plan = PreemptionPlan(head, node, victims)
        return best_plan


#: Policies constructible by name.
POLICIES = {
    FIFOPolicy.name: FIFOPolicy,
    ShortestJobFirstPolicy.name: ShortestJobFirstPolicy,
    "shortest-job-first": ShortestJobFirstPolicy,
    EasyBackfillPolicy.name: EasyBackfillPolicy,
    "easy-backfill": EasyBackfillPolicy,
    PreemptivePriorityPolicy.name: PreemptivePriorityPolicy,
    "priority": PreemptivePriorityPolicy,
}


def make_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {policy!r}; "
            f"known policies: {sorted(set(POLICIES))}"
        ) from None
