"""Cacheless storage service — the original WRENCH baseline.

The paper compares WRENCH-cache against the unmodified WRENCH simulator,
whose I/O model sends every byte to the storage device at disk bandwidth:
no page cache, no distinction between first and repeated accesses, no dirty
data.  :class:`SimpleStorageService` reproduces that behaviour, including
for remote (NFS) storage when constructed with a network and a client host
at read/write time.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.pagecache.io_controller import IOResult
from repro.platform.host import Host
from repro.platform.network import Network
from repro.platform.storage import Disk
from repro.simulator.storage_service import StorageService


class SimpleStorageService(StorageService):
    """Storage service without page cache simulation (original WRENCH).

    Parameters
    ----------
    env, host, disk:
        Location of the service.
    network:
        Required only when the service will be accessed from other hosts;
        remote accesses then pay a network transfer in addition to the disk
        access, still without any caching.
    """

    cache_mode = "none"

    def __init__(self, env: Environment, host: Host, disk: Disk,
                 network: Optional[Network] = None, name: Optional[str] = None):
        super().__init__(env, host, disk, name=name)
        self.network = network

    def _network_transfer(self, src: Host, dst: Host, amount: float, label: str):
        if src.name == dst.name:
            return
        if self.network is None:
            raise ConfigurationError(
                f"storage service {self.name!r} accessed from {src.name!r} but "
                "no network was configured"
            )
        yield self.network.transfer(src.name, dst.name, amount, label=label)

    def read_file(self, file: File, *, reader_host: Optional[Host] = None,
                  owner: Optional[str] = None, chunk_size: Optional[float] = None,
                  use_anonymous_memory: bool = True):
        start = self.env.now
        result = IOResult(file.name, file.size, start, start)
        yield self.disk.read(file.size, label=f"read:{file.name}")
        result.storage_bytes += file.size
        if reader_host is not None and reader_host.name != self.host.name:
            yield from self._network_transfer(
                self.host, reader_host, file.size, f"net-read:{file.name}"
            )
        result.chunks = 1
        result.end_time = self.env.now
        return result

    def write_file(self, file: File, *, writer_host: Optional[Host] = None,
                   owner: Optional[str] = None, chunk_size: Optional[float] = None):
        self.disk.allocate(file.size)
        start = self.env.now
        result = IOResult(file.name, file.size, start, start)
        if writer_host is not None and writer_host.name != self.host.name:
            yield from self._network_transfer(
                writer_host, self.host, file.size, f"net-write:{file.name}"
            )
        yield self.disk.write(file.size, label=f"write:{file.name}")
        result.storage_bytes += file.size
        result.chunks = 1
        result.end_time = self.env.now
        return result
