"""Workflow execution (the simulated workflow management system).

The :class:`WorkflowExecutor` runs one workflow instance on one host:
tasks start as soon as all their input files exist, each task reads its
inputs, computes, writes its outputs and (optionally) releases its
anonymous memory — the execution pattern of both the synthetic application
and the Nighres workflow in the paper.  Independent tasks of the same
workflow run concurrently, bounded by the host's CPU cores; independent
workflow instances (Exp 2 and 3) are separate executors running in
parallel in the same simulation.

The executor also supports *suspension* for preemptive batch scheduling
(:meth:`WorkflowExecutor.preempt`): running tasks are interrupted, their
partial outputs and anonymous memory are rolled back, compute progress is
checkpointed (minus a configurable lost-work penalty), and
:meth:`WorkflowExecutor.run` returns :data:`WorkflowExecutor.PREEMPTED`.
Calling :meth:`run` again resumes from the checkpoint: completed tasks
are not re-run, interrupted tasks re-read their inputs (cheap when the
node's page cache is still warm) and compute only their remaining work.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.des.environment import Environment
from repro.des.events import Interrupt
from repro.errors import SchedulingError
from repro.filesystem.file import File
from repro.filesystem.registry import FileRegistry
from repro.platform.host import Host
from repro.simulator.compute_service import ComputeService
from repro.simulator.storage_service import StorageService
from repro.simulator.tracing import OperationRecord, Tracer
from repro.simulator.workflow import Task, Workflow


class WorkflowExecutor:
    """Executes one workflow instance.

    Parameters
    ----------
    env:
        Simulation environment.
    workflow:
        The workflow to execute.
    host:
        The host running the tasks (CPU and, for local I/O, page cache).
    registry:
        File registry used to locate input files and to record outputs.
    output_storage:
        Storage service receiving the files produced by the workflow.
    tracer:
        Receives one :class:`OperationRecord` per read/compute/write.
    label:
        Application label used in traces and as the anonymous-memory owner;
        defaults to the workflow name.
    chunk_size:
        I/O granularity; ``None`` uses the storage service default.
    max_concurrent_tasks:
        Upper bound on simultaneously running tasks of this workflow
        (``None`` = bounded only by dependencies and the host CPU).  The
        batch scheduler sets this to the job's reserved core count so a
        reservation is an actual execution bound, not just bookkeeping.
    lost_work_penalty:
        Seconds of in-flight compute progress lost at each preemption
        (work done since the last checkpoint, redone on resume).
    """

    #: Sentinel returned by :meth:`run` (and internally by task processes)
    #: when the execution was suspended by :meth:`preempt`.
    PREEMPTED = "preempted"

    def __init__(self, env: Environment, workflow: Workflow, host: Host,
                 registry: FileRegistry, output_storage: StorageService,
                 tracer: Tracer, label: Optional[str] = None,
                 chunk_size: Optional[float] = None,
                 compute_service: Optional[ComputeService] = None,
                 max_concurrent_tasks: Optional[int] = None,
                 lost_work_penalty: float = 0.0):
        self.env = env
        self.workflow = workflow
        self.host = host
        self.registry = registry
        self.output_storage = output_storage
        self.tracer = tracer
        self.label = label or workflow.name
        self.chunk_size = chunk_size
        if max_concurrent_tasks is not None and max_concurrent_tasks < 1:
            raise SchedulingError(
                f"executor {self.label!r}: max_concurrent_tasks must be >= 1"
            )
        if lost_work_penalty < 0:
            raise SchedulingError(
                f"executor {self.label!r}: lost_work_penalty must be >= 0"
            )
        self.max_concurrent_tasks = max_concurrent_tasks
        self.lost_work_penalty = float(lost_work_penalty)
        self.compute_service = compute_service or ComputeService(env, host)
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        #: Checkpoint state surviving across suspensions: task objects by
        #: name, tasks not yet started, names of completed tasks, and the
        #: flops already credited to partially computed tasks.
        self._tasks: Dict[str, Task] = {}
        self._pending: Optional[Dict[str, Task]] = None
        self._completed: set = set()
        self._compute_done: Dict[str, float] = {}
        self._running: Dict[str, object] = {}
        self._preempting = False
        self._crashing = False
        self._suspended = False
        #: Compute seconds destroyed by suspensions: the lost-work penalty
        #: of each preemption, plus the whole in-flight segment of each
        #: crash (that progress lived in the node's memory).
        self.lost_compute_seconds = 0.0

    @property
    def suspended(self) -> bool:
        """True while the execution sits preempted, awaiting a resume."""
        return self._suspended

    # ------------------------------------------------------------------- run
    def run(self):
        """Execute the workflow; simulation process returning the makespan.

        Returns :data:`PREEMPTED` instead when the execution was suspended
        by :meth:`preempt`; calling :meth:`run` again later resumes from
        the checkpoint.
        """
        if self._pending is None:
            self.workflow.validate()
            self._tasks = {task.name: task for task in self.workflow.tasks}
            self._pending = dict(self._tasks)
        if self.start_time is None:
            self.start_time = self.env.now
        if self._preempting:
            # Preempted after dispatch but before this process first ran
            # (the scheduler can plan a preemption in the same pass that
            # started the victim): suspend immediately with no progress.
            self._preempting = False
            self._crashing = False
            self._suspended = True
            return self.PREEMPTED
        self._suspended = False
        pending, running = self._pending, self._running

        while pending or running:
            # Launch every task whose dependencies are satisfied, up to the
            # concurrency bound (suspended executors stop launching).  The
            # scan never mutates ``pending`` — startable tasks are
            # collected first and moved after — so no per-wake
            # ``list(items())`` snapshot is allocated; dependency
            # satisfaction cannot change mid-pass (``_completed`` only
            # grows in the reap phase below).
            if not self._preempting:
                startable = None
                bound = self.max_concurrent_tasks
                slots = (
                    None if bound is None else max(0, bound - len(running))
                )
                for task in pending.values():
                    if slots is not None and (
                        len(startable) if startable is not None else 0
                    ) >= slots:
                        break
                    deps = self.workflow.dependencies(task)
                    if all(dep.name in self._completed for dep in deps):
                        if startable is None:
                            startable = []
                        startable.append(task)
                if startable is not None:
                    for task in startable:
                        process = self.env.process(
                            self._execute_task(task),
                            name=f"{self.label}:{task.name}",
                        )
                        running[task.name] = process
                        del pending[task.name]

            if not running:
                if self._preempting:
                    # Clear the flag so a later resume starts normally (a
                    # flag still set at entry means "preempted before the
                    # process ever ran", handled above).
                    self._preempting = False
                    self._crashing = False
                    self._suspended = True
                    return self.PREEMPTED
                raise SchedulingError(
                    f"workflow {self.workflow.name!r} cannot make progress: "
                    f"tasks {sorted(pending)} have unsatisfied dependencies"
                )

            # AnyOf copies the iterable itself; no list() snapshot needed.
            yield self.env.any_of(running.values())

            # Reap finished tasks: scan without copying, mutate after.
            finished = None
            for name, process in running.items():
                if process.is_alive:
                    continue
                if not process.ok:
                    raise process.value
                if finished is None:
                    finished = []
                finished.append((name, process.value))
            if finished is not None:
                for name, value in finished:
                    del running[name]
                    if value == self.PREEMPTED:
                        # The task was interrupted: it re-runs on resume.
                        pending[name] = self._tasks[name]
                    else:
                        self._completed.add(name)
                        self._compute_done.pop(name, None)

        self.end_time = self.env.now
        return self.end_time - self.start_time

    # ------------------------------------------------------------ preemption
    def preempt(self) -> None:
        """Suspend the execution (checkpoint-and-requeue).

        Must be called from a *different* simulation process (typically
        the batch scheduler).  Every running task is interrupted; each
        rolls back its partial outputs and anonymous memory, checkpoints
        its compute progress minus :attr:`lost_work_penalty`, and the
        main loop returns :data:`PREEMPTED` once all tasks have unwound.
        """
        self._preempting = True
        for process in self._running.values():
            if process.is_alive:
                process.interrupt(self.PREEMPTED)

    def crash(self) -> None:
        """Suspend the execution because its node crashed.

        Same unwind as :meth:`preempt` — running tasks are interrupted and
        roll back their partial outputs and anonymous memory — but the
        in-flight compute segment earns *no* checkpoint credit: that
        progress only existed in the crashed node's memory.  Work
        checkpointed by earlier suspensions survives (checkpoints persist
        to the node's disk, which outlives a reboot), as do completed
        tasks and their outputs.
        """
        self._crashing = True
        self.preempt()

    def rebind(self, host: Host, output_storage: StorageService) -> None:
        """Repoint a suspended executor at a different node.

        Used when a crash-restarted job is dispatched elsewhere: tasks now
        compute on ``host`` and write to ``output_storage``.  Files the
        job already produced stay registered on the old node's storage and
        are read remotely through the registry.  The compute service is
        rebuilt for the new host; a custom ``compute_service`` passed at
        construction does not survive a rebind.
        """
        if host is self.host:
            return
        self.host = host
        self.output_storage = output_storage
        self.compute_service = ComputeService(self.env, host)

    # ------------------------------------------------------------------ tasks
    def _execute_task(self, task: Task):
        compute_start: Optional[float] = None
        remaining_flops = 0.0
        written: List[File] = []
        in_flight_write: Optional[File] = None
        try:
            # Read inputs in declaration order.  On a resume after
            # preemption the re-read mostly hits the node's page cache,
            # whose contents survived the suspension.
            for file in task.inputs:
                service = self._locate(file)
                result = yield from service.read_file(
                    file,
                    reader_host=self.host,
                    owner=self.label,
                    chunk_size=self.chunk_size,
                )
                self.tracer.record_operation(
                    OperationRecord(
                        app=self.label,
                        task=task.name,
                        kind="read",
                        filename=file.name,
                        size=file.size,
                        start=result.start_time,
                        end=result.end_time,
                        cache_bytes=result.cache_bytes,
                        storage_bytes=result.storage_bytes,
                    )
                )

            # Compute only the work not covered by an earlier checkpoint.
            remaining_flops = max(
                0.0, task.flops - self._compute_done.get(task.name, 0.0)
            )
            if remaining_flops > 0:
                compute_start = self.env.now
                yield from self.compute_service.execute(
                    task, flops=remaining_flops
                )
                self.tracer.record_operation(
                    OperationRecord(
                        app=self.label,
                        task=task.name,
                        kind="compute",
                        filename=None,
                        size=0.0,
                        start=compute_start,
                        end=self.env.now,
                    )
                )
                compute_start = None
                self._compute_done[task.name] = task.flops

            # Write outputs in declaration order.
            for file in task.outputs:
                in_flight_write = file
                result = yield from self.output_storage.write_file(
                    file,
                    writer_host=self.host,
                    owner=self.label,
                    chunk_size=self.chunk_size,
                )
                in_flight_write = None
                written.append(file)
                self.registry.add_entry(file, self.output_storage)
                self.tracer.record_operation(
                    OperationRecord(
                        app=self.label,
                        task=task.name,
                        kind="write",
                        filename=file.name,
                        size=file.size,
                        start=result.start_time,
                        end=result.end_time,
                        cache_bytes=result.cache_bytes,
                        storage_bytes=result.storage_bytes,
                    )
                )

            # Release the application's anonymous memory, as the paper's
            # synthetic application does at the end of every task.
            if task.release_memory and self.host.memory_manager is not None:
                self.host.memory_manager.release_anonymous_memory(owner=self.label)
        except Interrupt as interrupt:
            self._checkpoint_task(task, compute_start, remaining_flops,
                                  interrupt)
            self._rollback_task(written, in_flight_write)
            return self.PREEMPTED
        return True

    def _checkpoint_task(self, task: Task, compute_start: Optional[float],
                         remaining_flops: float,
                         interrupt: Interrupt) -> None:
        """Credit the flops computed before the interrupt, minus the lost
        work redone on resume (checkpoint granularity)."""
        if compute_start is None or remaining_flops <= 0:
            return
        # The compute service reports the seconds the work actually held a
        # core (time queued for a busy core executes nothing); fall back
        # to wall-clock elapsed for custom services that do not.
        executed = getattr(
            interrupt, "executed_seconds", self.env.now - compute_start
        )
        speed = self.host.cpu.speed
        done = min(remaining_flops, executed * speed)
        if self._crashing:
            # The whole in-flight segment dies with the node's memory.
            self.lost_compute_seconds += done / speed
            return
        credit = max(0.0, done - self.lost_work_penalty * speed)
        self.lost_compute_seconds += (done - credit) / speed
        total = self._compute_done.get(task.name, 0.0) + credit
        self._compute_done[task.name] = min(task.flops, total)

    def _rollback_task(self, written: List[File],
                       in_flight_write: Optional[File]) -> None:
        """Undo the interrupted attempt's outputs and anonymous memory.

        Partial and completed outputs of the attempt are deleted (the
        retry re-writes them from scratch; without this, disk usage and
        the registry would double-count them).  The task's anonymous
        memory is released — the checkpoint conceptually persists it to
        disk — so the node's memory accounting stays balanced while the
        job sits suspended; the page-cache residency of its files is
        deliberately left intact for the resume.
        """
        if in_flight_write is not None:
            self.output_storage.delete_file(in_flight_write)
        for file in written:
            self.output_storage.delete_file(file)
            self.registry.remove_entry(file, self.output_storage)
        if self.host.memory_manager is not None:
            self.host.memory_manager.release_anonymous_memory(owner=self.label)

    def _locate(self, file: File) -> StorageService:
        if not self.registry.exists(file):
            raise SchedulingError(
                f"task input {file.name!r} does not exist on any storage service; "
                "stage it with Simulation.stage_file or produce it with a task"
            )
        # When the file is replicated on several services (e.g. a dataset
        # staged on every node of a cluster), prefer the replica local to
        # the executing host: its reads hit this host's disk and page
        # cache, which is what cache-locality-aware placement exploits.
        for service in self.registry.lookup(file):
            if getattr(service, "host", None) is self.host:
                return service
        return self.registry.primary_location(file)

    def __repr__(self) -> str:
        return (
            f"<WorkflowExecutor {self.label!r} workflow={self.workflow.name!r} "
            f"host={self.host.name!r}>"
        )
