"""Workflow execution (the simulated workflow management system).

The :class:`WorkflowExecutor` runs one workflow instance on one host:
tasks start as soon as all their input files exist, each task reads its
inputs, computes, writes its outputs and (optionally) releases its
anonymous memory — the execution pattern of both the synthetic application
and the Nighres workflow in the paper.  Independent tasks of the same
workflow run concurrently, bounded by the host's CPU cores; independent
workflow instances (Exp 2 and 3) are separate executors running in
parallel in the same simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.des.environment import Environment
from repro.errors import SchedulingError
from repro.filesystem.file import File
from repro.filesystem.registry import FileRegistry
from repro.platform.host import Host
from repro.simulator.compute_service import ComputeService
from repro.simulator.storage_service import StorageService
from repro.simulator.tracing import OperationRecord, Tracer
from repro.simulator.workflow import Task, Workflow


class WorkflowExecutor:
    """Executes one workflow instance.

    Parameters
    ----------
    env:
        Simulation environment.
    workflow:
        The workflow to execute.
    host:
        The host running the tasks (CPU and, for local I/O, page cache).
    registry:
        File registry used to locate input files and to record outputs.
    output_storage:
        Storage service receiving the files produced by the workflow.
    tracer:
        Receives one :class:`OperationRecord` per read/compute/write.
    label:
        Application label used in traces and as the anonymous-memory owner;
        defaults to the workflow name.
    chunk_size:
        I/O granularity; ``None`` uses the storage service default.
    max_concurrent_tasks:
        Upper bound on simultaneously running tasks of this workflow
        (``None`` = bounded only by dependencies and the host CPU).  The
        batch scheduler sets this to the job's reserved core count so a
        reservation is an actual execution bound, not just bookkeeping.
    """

    def __init__(self, env: Environment, workflow: Workflow, host: Host,
                 registry: FileRegistry, output_storage: StorageService,
                 tracer: Tracer, label: Optional[str] = None,
                 chunk_size: Optional[float] = None,
                 compute_service: Optional[ComputeService] = None,
                 max_concurrent_tasks: Optional[int] = None):
        self.env = env
        self.workflow = workflow
        self.host = host
        self.registry = registry
        self.output_storage = output_storage
        self.tracer = tracer
        self.label = label or workflow.name
        self.chunk_size = chunk_size
        if max_concurrent_tasks is not None and max_concurrent_tasks < 1:
            raise SchedulingError(
                f"executor {self.label!r}: max_concurrent_tasks must be >= 1"
            )
        self.max_concurrent_tasks = max_concurrent_tasks
        self.compute_service = compute_service or ComputeService(env, host)
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    # ------------------------------------------------------------------- run
    def run(self):
        """Execute the workflow; simulation process returning the makespan."""
        self.workflow.validate()
        self.start_time = self.env.now
        completed: set = set()
        pending: Dict[str, Task] = {task.name: task for task in self.workflow.tasks}
        running: Dict[str, object] = {}

        while pending or running:
            # Launch every task whose dependencies are satisfied, up to the
            # concurrency bound.
            for name, task in list(pending.items()):
                if (self.max_concurrent_tasks is not None
                        and len(running) >= self.max_concurrent_tasks):
                    break
                deps = self.workflow.dependencies(task)
                if all(dep.name in completed for dep in deps):
                    process = self.env.process(
                        self._execute_task(task), name=f"{self.label}:{name}"
                    )
                    running[name] = process
                    del pending[name]

            if not running:
                raise SchedulingError(
                    f"workflow {self.workflow.name!r} cannot make progress: "
                    f"tasks {sorted(pending)} have unsatisfied dependencies"
                )

            yield self.env.any_of(list(running.values()))

            for name, process in list(running.items()):
                if process.is_alive:
                    continue
                if not process.ok:
                    raise process.value
                completed.add(name)
                del running[name]

        self.end_time = self.env.now
        return self.end_time - self.start_time

    # ------------------------------------------------------------------ tasks
    def _execute_task(self, task: Task):
        # Read inputs in declaration order.
        for file in task.inputs:
            service = self._locate(file)
            result = yield from service.read_file(
                file,
                reader_host=self.host,
                owner=self.label,
                chunk_size=self.chunk_size,
            )
            self.tracer.record_operation(
                OperationRecord(
                    app=self.label,
                    task=task.name,
                    kind="read",
                    filename=file.name,
                    size=file.size,
                    start=result.start_time,
                    end=result.end_time,
                    cache_bytes=result.cache_bytes,
                    storage_bytes=result.storage_bytes,
                )
            )

        # Compute.
        if task.flops > 0:
            compute_start = self.env.now
            yield from self.compute_service.execute(task)
            self.tracer.record_operation(
                OperationRecord(
                    app=self.label,
                    task=task.name,
                    kind="compute",
                    filename=None,
                    size=0.0,
                    start=compute_start,
                    end=self.env.now,
                )
            )

        # Write outputs in declaration order.
        for file in task.outputs:
            result = yield from self.output_storage.write_file(
                file,
                writer_host=self.host,
                owner=self.label,
                chunk_size=self.chunk_size,
            )
            self.registry.add_entry(file, self.output_storage)
            self.tracer.record_operation(
                OperationRecord(
                    app=self.label,
                    task=task.name,
                    kind="write",
                    filename=file.name,
                    size=file.size,
                    start=result.start_time,
                    end=result.end_time,
                    cache_bytes=result.cache_bytes,
                    storage_bytes=result.storage_bytes,
                )
            )

        # Release the application's anonymous memory, as the paper's
        # synthetic application does at the end of every task.
        if task.release_memory and self.host.memory_manager is not None:
            self.host.memory_manager.release_anonymous_memory(owner=self.label)

    def _locate(self, file: File) -> StorageService:
        if not self.registry.exists(file):
            raise SchedulingError(
                f"task input {file.name!r} does not exist on any storage service; "
                "stage it with Simulation.stage_file or produce it with a task"
            )
        # When the file is replicated on several services (e.g. a dataset
        # staged on every node of a cluster), prefer the replica local to
        # the executing host: its reads hit this host's disk and page
        # cache, which is what cache-locality-aware placement exploits.
        for service in self.registry.lookup(file):
            if getattr(service, "host", None) is self.host:
                return service
        return self.registry.primary_location(file)

    def __repr__(self) -> str:
        return (
            f"<WorkflowExecutor {self.label!r} workflow={self.workflow.name!r} "
            f"host={self.host.name!r}>"
        )
