"""Compute service: task computation on a host's CPU.

A thin wrapper over :class:`~repro.platform.cpu.CPU` mirroring WRENCH's
bare-metal compute service.  It exists mainly so the workflow executor
talks to services (storage + compute) rather than to devices directly,
which keeps the door open for richer compute models (multi-core tasks,
batch queues) without touching the executor.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.des.events import Interrupt
from repro.platform.host import Host
from repro.simulator.workflow import Task


class ComputeService:
    """Executes the computational part of tasks on a host."""

    def __init__(self, env: Environment, host: Host, name: Optional[str] = None):
        self.env = env
        self.host = host
        self.name = name or f"compute:{host.name}"
        self.tasks_completed = 0

    def execute(self, task: Task, flops: Optional[float] = None):
        """Run the computation of ``task``; simulation process.

        Returns the simulated duration of the computation (which may exceed
        the task's CPU time if all cores were busy and the task had to
        queue).  ``flops`` overrides the task's own flop count — the
        workflow executor passes the *remaining* work when resuming a
        checkpointed task after a preemption.

        If the calling process is interrupted while the computation is in
        flight, the computation itself is cancelled too (releasing its
        core immediately) and the interrupt propagates to the caller.
        """
        start = self.env.now
        amount = task.flops if flops is None else flops
        if amount > 0:
            work = self.host.cpu.execute(amount, label=f"compute:{task.name}")
            try:
                yield work
            except Interrupt as interrupt:
                # Tell the caller how long the work actually held a core
                # (queueing for a busy core executes nothing), so a
                # checkpoint credits only flops that really ran.
                granted_at = (work.data or {}).get("granted_at")
                interrupt.executed_seconds = (
                    0.0 if granted_at is None else self.env.now - granted_at
                )
                if work.is_alive:
                    work.interrupt("preempted")
                raise
        self.tasks_completed += 1
        return self.env.now - start

    def __repr__(self) -> str:
        return f"<ComputeService {self.name!r} host={self.host.name!r}>"
