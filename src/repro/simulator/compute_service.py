"""Compute service: task computation on a host's CPU.

A thin wrapper over :class:`~repro.platform.cpu.CPU` mirroring WRENCH's
bare-metal compute service.  It exists mainly so the workflow executor
talks to services (storage + compute) rather than to devices directly,
which keeps the door open for richer compute models (multi-core tasks,
batch queues) without touching the executor.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.platform.host import Host
from repro.simulator.workflow import Task


class ComputeService:
    """Executes the computational part of tasks on a host."""

    def __init__(self, env: Environment, host: Host, name: Optional[str] = None):
        self.env = env
        self.host = host
        self.name = name or f"compute:{host.name}"
        self.tasks_completed = 0

    def execute(self, task: Task):
        """Run the computation of ``task``; simulation process.

        Returns the simulated duration of the computation (which may exceed
        the task's CPU time if all cores were busy and the task had to
        queue).
        """
        start = self.env.now
        if task.flops > 0:
            yield self.host.cpu.execute(task.flops, label=f"compute:{task.name}")
        self.tasks_completed += 1
        return self.env.now - start

    def __repr__(self) -> str:
        return f"<ComputeService {self.name!r} host={self.host.name!r}>"
