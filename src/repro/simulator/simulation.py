"""Simulation facade.

:class:`Simulation` is the main entry point of the library.  It ties
together a platform, storage services, workflows and tracing, then runs the
discrete-event simulation and returns a :class:`SimulationResult` with
everything the paper's figures are built from: per-operation times, memory
profiles, cache contents and cache statistics.

Example
-------
>>> from repro import Simulation, SimulationConfig, File, GB
>>> from repro.apps.synthetic import synthetic_workflow
>>> sim = Simulation(config=SimulationConfig(cache_mode="writeback"))
>>> sim.create_single_node_platform()
>>> svc = sim.create_storage_service("node1", "/local")
>>> app = synthetic_workflow(input_size=3 * GB)
>>> sim.stage_file(app.input_files()[0], svc)
>>> sim.submit_workflow(app, host="node1", storage=svc)
>>> result = sim.run()
>>> result.makespan > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - the scheduler imports simulator
    # modules, so the runtime imports live inside the methods below.
    from repro.scheduler.cluster import ClusterScheduler
    from repro.scheduler.job import Job
    from repro.scheduler.metrics import SchedulerMetrics
    from repro.scheduler.placement import PlacementStrategy
    from repro.scheduler.policies import SchedulingPolicy

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.filesystem.nfs import NFSConfig
from repro.filesystem.registry import FileRegistry
from repro.obs import DESSampler, Observer, env_observability_enabled, publish
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.memory_manager import MemorySnapshot
from repro.pagecache.stats import CacheStatistics, ExtentOccupancy
from repro.platform.host import Host
from repro.platform.platform import Platform, concordia_cluster
from repro.simulator.cacheless import SimpleStorageService
from repro.simulator.storage_service import (
    NFSStorageService,
    PageCachedStorageService,
    StorageService,
)
from repro.simulator.tracing import CacheContentRecord, OperationRecord, Tracer
from repro.simulator.wms import WorkflowExecutor
from repro.simulator.workflow import Task, Workflow
from repro.units import GiB, MBps, GB, MB

#: Valid cache modes for storage services.
CACHE_MODES = ("none", "writeback", "writethrough")


@dataclass
class SimulationConfig:
    """Global configuration of a simulation.

    Attributes
    ----------
    cache_mode:
        Default cache mode of storage services: ``"none"`` reproduces the
        original WRENCH simulator, ``"writeback"`` and ``"writethrough"``
        enable the page cache model.
    page_cache:
        Kernel tunables for the page cache model.
    chunk_size:
        Default I/O granularity (``None`` = the page-cache default).
    trace_interval:
        Period in simulated seconds of the memory profile sampler
        (``None`` disables sampling).
    """

    cache_mode: str = "writeback"
    page_cache: PageCacheConfig = field(default_factory=PageCacheConfig)
    chunk_size: Optional[float] = None
    trace_interval: Optional[float] = 1.0

    def __post_init__(self) -> None:
        if self.cache_mode not in CACHE_MODES:
            raise ConfigurationError(
                f"cache_mode must be one of {CACHE_MODES}, got {self.cache_mode!r}"
            )
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.trace_interval is not None and self.trace_interval <= 0:
            raise ConfigurationError("trace_interval must be positive")


@dataclass
class SimulationResult:
    """Everything observed during a simulation run."""

    #: Simulated makespan (time of the last completed workflow).
    makespan: float
    #: Wall-clock time spent running the simulation (Figure 8).
    wallclock_time: float
    #: All traced read/compute/write operations.
    operations: List[OperationRecord]
    #: Periodic memory snapshots (Figure 4b).
    memory_trace: List[MemorySnapshot]
    #: Per-file cache contents recorded after each I/O (Figure 4c).
    cache_contents: List[CacheContentRecord]
    #: Cache statistics per host name.
    cache_stats: Dict[str, CacheStatistics]
    #: Per-workflow-instance makespan, keyed by label.
    app_makespans: Dict[str, float]
    #: Batch-scheduler metrics (``None`` unless a cluster scheduler ran):
    #: wait times, bounded slowdown, utilization, throughput.
    scheduler: Optional[SchedulerMetrics] = None
    #: The telemetry observer (``None`` unless the simulation was built
    #: with ``observe=...`` or ``REPRO_OBS``): spans, counter samples and
    #: the metrics registry, ready for the :mod:`repro.obs` exporters.
    observer: Optional[Observer] = None

    # ------------------------------------------------------------------- api
    def operations_of(self, kind: str, app: Optional[str] = None) -> List[OperationRecord]:
        """Operations of ``kind`` (optionally restricted to one app)."""
        return [
            record
            for record in self.operations
            if record.kind == kind and (app is None or record.app == app)
        ]

    def duration_of(self, task: str, kind: str, app: Optional[str] = None) -> float:
        """Summed duration of ``kind`` operations of ``task``."""
        return sum(
            record.duration
            for record in self.operations
            if record.task == task
            and record.kind == kind
            and (app is None or record.app == app)
        )

    def total_read_time(self, app: Optional[str] = None) -> float:
        """Total simulated time spent reading files."""
        return sum(record.duration for record in self.operations_of("read", app))

    def total_write_time(self, app: Optional[str] = None) -> float:
        """Total simulated time spent writing files."""
        return sum(record.duration for record in self.operations_of("write", app))

    def mean_app_read_time(self) -> float:
        """Mean per-application cumulative read time (Figures 5 and 7)."""
        apps = {record.app for record in self.operations}
        if not apps:
            return 0.0
        return sum(self.total_read_time(app) for app in apps) / len(apps)

    def mean_app_write_time(self) -> float:
        """Mean per-application cumulative write time (Figures 5 and 7)."""
        apps = {record.app for record in self.operations}
        if not apps:
            return 0.0
        return sum(self.total_write_time(app) for app in apps) / len(apps)

    def read_cache_hit_ratio(self, app: Optional[str] = None) -> float:
        """Fraction of read bytes served by page caches (0 if no reads).

        Aggregated over the traced read operations, so it covers every
        host's cache in multi-node simulations.
        """
        reads = self.operations_of("read", app)
        total = sum(record.size for record in reads)
        if total <= 0:
            return 0.0
        return sum(record.cache_bytes for record in reads) / total


class Simulation:
    """Builds and runs one simulated execution.

    Parameters
    ----------
    env:
        Simulation environment (a fresh one is created by default).
    config:
        Global configuration.
    observe:
        Telemetry switch: ``True`` attaches a default
        :class:`repro.obs.Observer`, an :class:`~repro.obs.Observer`
        instance attaches that observer, ``False`` disables telemetry,
        and ``None`` (the default) defers to the ``REPRO_OBS``
        environment variable.  Telemetry only observes — enabling it
        does not change simulated results.
    eviction_policy:
        Convenience override of the page cache's victim-selection policy
        (equivalent to setting ``config.page_cache.eviction_policy``): a
        registered name (``"lru"``, ``"arc"``, ``"2q"``, ``"clock-pro"``,
        ``"priority"``), an :class:`~repro.pagecache.policy.EvictionPolicy`
        instance (single-host simulations only), a subclass, or a factory.
        ``None`` keeps the configured policy (default LRU).
    fault_plan:
        A :class:`repro.faults.FaultPlan` describing node crashes,
        stragglers and elastic capacity to inject while the cluster
        scheduler runs.  ``None`` or the zero plan (``FaultPlan()``)
        injects nothing and leaves the run byte-identical to a fault-free
        simulation; a non-zero plan requires a cluster scheduler.
    """

    def __init__(self, env: Optional[Environment] = None,
                 config: Optional[SimulationConfig] = None,
                 observe: Union[bool, Observer, None] = None,
                 eviction_policy=None,
                 fault_plan=None):
        self.env = env or Environment()
        self.config = config or SimulationConfig()
        if eviction_policy is not None:
            # Copy-on-override: the caller's config object (often shared
            # across runs of a sweep) is never mutated.
            self.config = replace(
                self.config,
                page_cache=self.config.page_cache.with_updates(
                    eviction_policy=eviction_policy
                ),
            )
        if observe is None:
            observe = env_observability_enabled()
        if isinstance(observe, Observer):
            self.observer: Optional[Observer] = observe
        else:
            self.observer = Observer() if observe else None
        if self.observer is not None:
            self.env.observer = self.observer
        self.platform: Optional[Platform] = None
        self.registry = FileRegistry()
        self.tracer = Tracer(self.env, sample_interval=self.config.trace_interval,
                             observer=self.observer)
        self.storage_services: List[StorageService] = []
        self._executors: List[WorkflowExecutor] = []
        self._scheduler: Optional[ClusterScheduler] = None
        self.fault_plan = fault_plan
        self._fault_injector = None
        #: Lifecycle: ``_started`` flips when the processes are launched
        #: (first :meth:`run` or :meth:`step_until`); ``_has_run`` when the
        #: result has been finalized (a Simulation finalizes only once).
        self._started = False
        self._has_run = False
        self._completion = None
        self._sampler = None
        self._wallclock = 0.0
        #: Build recipe bound by the experiment builders
        #: (:mod:`repro.snapshot.recipe`); snapshots embed it so a restore
        #: can rebuild the simulation from scratch and replay to time T.
        self._recipe = None

    # --------------------------------------------------------------- platform
    def set_platform(self, platform: Platform) -> Platform:
        """Use an externally built platform."""
        self.platform = platform
        return platform

    def create_single_node_platform(self, *, cores: int = 32,
                                    memory_size: float = 250 * GiB,
                                    memory_bandwidth: float = 4812 * MBps,
                                    disk_bandwidth: float = 465 * MBps,
                                    disk_capacity: float = float("inf"),
                                    ) -> Platform:
        """Create a one-node platform matching the paper's compute nodes."""
        platform = concordia_cluster(
            self.env,
            compute_nodes=1,
            cores_per_node=cores,
            memory_size=memory_size,
            memory_bandwidth=memory_bandwidth,
            local_disk_bandwidth=disk_bandwidth,
            local_disk_capacity=disk_capacity,
            with_nfs_server=False,
        )
        return self.set_platform(platform)

    def create_cluster_platform(self, n_nodes: Optional[int] = None,
                                **kwargs) -> Platform:
        """Create the cluster platform (compute nodes, optional NFS server).

        ``n_nodes`` is a convenience alias for ``compute_nodes``; all other
        keyword arguments are forwarded to
        :func:`~repro.platform.platform.concordia_cluster`.
        """
        if n_nodes is not None:
            if "compute_nodes" in kwargs:
                raise ConfigurationError(
                    "pass either n_nodes or compute_nodes, not both"
                )
            kwargs["compute_nodes"] = n_nodes
        return self.set_platform(concordia_cluster(self.env, **kwargs))

    def host(self, name: str) -> Host:
        """Return a host of the platform."""
        if self.platform is None:
            raise ConfigurationError("no platform has been set")
        return self.platform.host(name)

    # --------------------------------------------------------------- services
    def create_storage_service(self, host_name: str, mount_point: str, *,
                               cache_mode: Optional[str] = None,
                               name: Optional[str] = None) -> StorageService:
        """Create a local storage service on ``host_name``/``mount_point``."""
        mode = cache_mode or self.config.cache_mode
        if mode not in CACHE_MODES:
            raise ConfigurationError(f"unknown cache mode {mode!r}")
        host = self.host(host_name)
        disk = host.disk(mount_point)
        if mode == "none":
            network = self.platform.network if self.platform else None
            service: StorageService = SimpleStorageService(
                self.env, host, disk, network=network, name=name
            )
        else:
            service = PageCachedStorageService(
                self.env,
                host,
                disk,
                cache_config=self.config.page_cache,
                writethrough=(mode == "writethrough"),
                name=name,
            )
            self.tracer.attach_memory_manager(service.memory_manager)
        self.storage_services.append(service)
        return service

    def create_nfs_storage_service(self, server_host: str, mount_point: str, *,
                                   nfs_config: Optional[NFSConfig] = None,
                                   cache_mode: Optional[str] = None,
                                   name: Optional[str] = None) -> StorageService:
        """Create an NFS storage service served by ``server_host``.

        With ``cache_mode="none"`` the server does not cache anything
        (cacheless baseline); otherwise the server maintains a page cache
        according to ``nfs_config`` (writethrough by default, as in Exp 3).
        """
        mode = cache_mode or self.config.cache_mode
        host = self.host(server_host)
        disk = host.disk(mount_point)
        if mode == "none":
            service: StorageService = SimpleStorageService(
                self.env, host, disk, network=self.platform.network, name=name
            )
        else:
            config = nfs_config or NFSConfig.hpc_default()
            if mode == "writeback":
                config = NFSConfig(
                    server_cache_mode="writeback",
                    server_read_cache=config.server_read_cache,
                    client_read_cache=config.client_read_cache,
                    client_write_cache=config.client_write_cache,
                )
            service = NFSStorageService(
                self.env,
                host,
                disk,
                network=self.platform.network,
                nfs_config=config,
                cache_config=self.config.page_cache,
                name=name,
            )
            if service.memory_manager is not None:
                self.tracer.attach_memory_manager(service.memory_manager)
        self.storage_services.append(service)
        return service

    # ------------------------------------------------------------------ files
    def stage_file(self, file: File, service: StorageService) -> None:
        """Create ``file`` on ``service`` before the simulation starts."""
        service.stage_file(file)
        self.registry.add_entry(file, service)

    def stage_files(self, files: List[File], service: StorageService) -> None:
        """Stage several files on the same service."""
        for file in files:
            self.stage_file(file, service)

    def stage_file_replicated(self, file: File) -> None:
        """Stage ``file`` on the local storage of every scheduler node.

        Mirrors a fully replicated dataset (or a pre-staged distributed
        file system): any node can read the file from its own disk, and
        workflow executors prefer the replica local to their host, so each
        node's page cache warms up independently — the situation
        cache-locality-aware placement exploits.
        """
        if self._scheduler is None:
            raise ConfigurationError(
                "stage_file_replicated requires a cluster scheduler; "
                "call create_cluster_scheduler first"
            )
        for node in self._scheduler.nodes:
            self.stage_file(file, node.storage)

    # -------------------------------------------------------------- workflows
    def submit_workflow(self, workflow: Workflow, *, host: str,
                        storage: StorageService, label: Optional[str] = None,
                        chunk_size: Optional[float] = None) -> WorkflowExecutor:
        """Register a workflow instance for execution on ``host``.

        ``storage`` receives the files produced by the workflow.  Input
        files must have been staged (or be produced by another submitted
        workflow) before :meth:`run` is called.
        """
        effective_label = label or workflow.name
        if self._scheduler is not None and any(
            job.label == effective_label for job in self._scheduler.jobs
        ):
            raise ConfigurationError(
                f"label {effective_label!r} is already used by a submitted "
                "job; labels key the traces and per-app makespans"
            )
        executor = WorkflowExecutor(
            self.env,
            workflow,
            self.host(host),
            self.registry,
            storage,
            self.tracer,
            label=label,
            chunk_size=chunk_size or self.config.chunk_size,
        )
        self._executors.append(executor)
        return executor

    # -------------------------------------------------------------- batch jobs
    def create_cluster_scheduler(self, *,
                                 policy: Union[str, SchedulingPolicy] = "fifo",
                                 placement: Union[str, PlacementStrategy] = "round-robin",
                                 node_names: Optional[List[str]] = None,
                                 mount_point: str = "/local",
                                 cache_mode: Optional[str] = None,
                                 chunk_size: Optional[float] = None,
                                 lost_work_penalty: float = 0.0,
                                 streaming: bool = False,
                                 ) -> ClusterScheduler:
        """Create the batch scheduler managing the platform's compute nodes.

        One storage service is created on ``mount_point`` of every node
        (``node_names`` defaults to all hosts with a disk mounted there,
        which excludes the NFS server and its ``/export`` disk).  Jobs are
        then submitted with :meth:`submit_job` and executed when
        :meth:`run` is called.

        With ``streaming=True`` the scheduler accepts submissions while
        the simulation runs (:meth:`submit_job` works at any paused
        point) and the run only completes once
        ``scheduler.close_stream()`` has been called — the mode
        :mod:`repro.service` drives.
        """
        from repro.scheduler.cluster import ClusterScheduler, NodeState

        if self._scheduler is not None:
            raise ConfigurationError("a cluster scheduler has already been created")
        if self.platform is None:
            raise ConfigurationError("create a platform before the scheduler")
        if node_names is None:
            node_names = [
                name
                for name, host in self.platform.hosts.items()
                if mount_point in host.disks
            ]
        if not node_names:
            raise ConfigurationError(
                f"no host has a disk mounted at {mount_point!r}"
            )
        nodes = [
            NodeState(
                self.host(name),
                self.create_storage_service(name, mount_point,
                                            cache_mode=cache_mode),
            )
            for name in node_names
        ]
        self._scheduler = ClusterScheduler(
            self.env,
            nodes,
            self.registry,
            self.tracer,
            policy=policy,
            placement=placement,
            chunk_size=chunk_size or self.config.chunk_size,
            lost_work_penalty=lost_work_penalty,
            streaming=streaming,
        )
        return self._scheduler

    @property
    def scheduler(self) -> Optional[ClusterScheduler]:
        """The cluster scheduler, if one was created."""
        return self._scheduler

    def submit_job(self, workflow: Workflow, *, cores: int = 1,
                   arrival_time: float = 0.0,
                   estimated_runtime: Optional[float] = None,
                   priority: int = 0,
                   label: Optional[str] = None) -> Job:
        """Submit a batch job to the cluster scheduler.

        Unlike :meth:`submit_workflow`, the execution host is not chosen by
        the caller: the job queues from ``arrival_time`` on and the
        scheduler's policy/placement pair decides when and where it runs.
        Higher ``priority`` runs first under the priority policies; the
        preemptive policy may suspend lower-priority jobs for it.
        """
        from repro.scheduler.job import Job

        if self._scheduler is None:
            raise ConfigurationError(
                "submit_job requires a cluster scheduler; "
                "call create_cluster_scheduler first"
            )
        job = Job(
            workflow,
            cores=cores,
            arrival_time=arrival_time,
            estimated_runtime=estimated_runtime,
            priority=priority,
            label=label,
        )
        if any(executor.label == job.label for executor in self._executors):
            raise ConfigurationError(
                f"label {job.label!r} is already used by a submitted "
                "workflow; labels key the traces and per-app makespans"
            )
        return self._scheduler.submit(job)

    def submit_trace(self, trace, *, max_jobs: Optional[int] = None,
                     load_factor: float = 1.0,
                     runtime_scale: float = 1.0,
                     cores_per_job_cap: Optional[int] = None,
                     dataset_size: float = 1 * GB,
                     output_size: float = 128 * MB,
                     priority_of=None,
                     label_prefix: str = "swf") -> List[Job]:
        """Replay an SWF workload trace as batch jobs.

        ``trace`` is an :class:`~repro.scheduler.swf.SWFTrace` or a path
        to an SWF file.  Each trace job becomes a single-task batch job
        that reads a shared input dataset (one dataset per SWF
        application/"executable number", replicated on every node's local
        storage), computes for its recorded runtime, and writes a private
        output file.  Priorities default to the SWF queue number.

        Scaling knobs (``max_jobs``, ``load_factor``, ``runtime_scale``)
        are forwarded to :meth:`~repro.scheduler.swf.SWFTrace.job_specs`;
        core requests are rescaled so the widest trace job exactly fits
        the largest scheduler node (override with ``cores_per_job_cap``).

        Returns the submitted :class:`~repro.scheduler.job.Job` list.
        """
        from repro.scheduler.swf import SWFTrace, load_swf

        if self._scheduler is None:
            raise ConfigurationError(
                "submit_trace requires a cluster scheduler; "
                "call create_cluster_scheduler first"
            )
        if not isinstance(trace, SWFTrace):
            trace = load_swf(trace)
        if trace.skipped:
            import warnings

            first_line, first_reason = trace.skipped[0]
            warnings.warn(
                f"SWF trace: tolerated {len(trace.skipped)} malformed "
                f"line(s) (first: line {first_line}, {first_reason}); the "
                "replay runs on the remaining "
                f"{trace.n_jobs} record(s)",
                stacklevel=2,
            )
        max_cores = cores_per_job_cap or max(
            node.total_cores for node in self._scheduler.nodes
        )
        specs = trace.job_specs(
            max_jobs=max_jobs,
            load_factor=load_factor,
            runtime_scale=runtime_scale,
            max_cores=max_cores,
            priority_of=priority_of,
        )

        datasets: Dict[int, File] = {}
        for spec in specs:
            if spec.app not in datasets:
                dataset = File(f"{label_prefix}_app{spec.app}", dataset_size)
                self.stage_file_replicated(dataset)
                datasets[spec.app] = dataset

        jobs: List[Job] = []
        for spec in specs:
            label = f"{label_prefix}{spec.job_id}"
            workflow = Workflow(label)
            workflow.add_task(
                Task.from_cpu_time(
                    "process",
                    spec.runtime,
                    inputs=[datasets[spec.app]],
                    outputs=[File(f"{label}_out", output_size)],
                )
            )
            jobs.append(
                self.submit_job(
                    workflow,
                    cores=spec.cores,
                    arrival_time=spec.arrival_time,
                    estimated_runtime=spec.estimated_runtime,
                    priority=spec.priority,
                    label=label,
                )
            )
        return jobs

    # ----------------------------------------------------------------- recipe
    def bind_recipe(self, recipe) -> None:
        """Attach the build recipe this simulation was constructed from.

        Called by the experiment builders (``build_exp6`` & co).  A bound
        recipe is what makes :meth:`snapshot` possible: the snapshot file
        records the recipe, and :meth:`restore` rebuilds the simulation
        from it before replaying to the snapshot time.
        """
        self._recipe = recipe

    @property
    def recipe(self):
        """The bound build recipe, or ``None``."""
        return self._recipe

    # -------------------------------------------------------------------- run
    def _start(self) -> None:
        """Launch the simulation's processes (idempotent).

        Everything :meth:`run` used to do before entering the event loop:
        fault injector, executor and scheduler processes, the completion
        condition and the optional DES sampler — in exactly that order, so
        a stepped run allocates event ids identically to a plain run.
        """
        if self._started:
            return
        if self._has_run:
            raise ConfigurationError("a Simulation object can only be run once")
        scheduled_jobs = self._scheduler.jobs if self._scheduler else []
        # A streaming scheduler may legitimately start empty: jobs arrive
        # over its lifetime via feed().
        streaming = self._scheduler is not None and self._scheduler.streaming
        if not self._executors and not scheduled_jobs and not streaming:
            raise ConfigurationError("no workflow or job was submitted")
        self._started = True

        if self.fault_plan is not None and not self.fault_plan.is_zero:
            if self._scheduler is None or not (scheduled_jobs or streaming):
                raise ConfigurationError(
                    "a non-zero fault_plan requires a cluster scheduler "
                    "with submitted jobs"
                )
            from repro.faults.injector import FaultInjector

            self._fault_injector = FaultInjector(
                self.env, self._scheduler, self.fault_plan
            )
            self._fault_injector.start()

        processes = [
            self.env.process(executor.run(), name=f"executor:{executor.label}")
            for executor in self._executors
        ]
        if self._scheduler is not None and (scheduled_jobs or streaming):
            processes.append(
                self.env.process(self._scheduler.run(), name="cluster-scheduler")
            )
        self._completion = self.env.all_of(processes)

        observer = self.observer
        if observer is not None and observer.des_sample_interval is not None:
            self._sampler = DESSampler(self.env, observer,
                                       interval=observer.des_sample_interval)
            self._sampler.start()

    @property
    def completed(self) -> bool:
        """Whether every submitted workflow and job has finished."""
        return self._completion is not None and self._completion.processed

    def step_until(self, t: float) -> float:
        """Advance the simulation to simulated time ``t`` and pause.

        Processes every event with timestamp ``<= t`` (stopping early at
        completion), then returns the simulated clock.  No guard events
        are inserted: the event heap is driven directly, so a run stepped
        in any number of segments processes *exactly* the events a plain
        :meth:`run` would, in the same order, with the same event ids —
        the invariant that makes snapshot-at-T byte-identical to an
        uninterrupted run.  Call :meth:`run` afterwards to finish the
        simulation and collect the result.
        """
        import time as _time

        self._start()
        t = float(t)
        if t < self.env.now:
            raise ConfigurationError(
                f"step_until({t}) is in the past (now={self.env.now})"
            )
        env = self.env
        completion = self._completion
        wall_start = _time.perf_counter()
        try:
            while not completion.processed:
                if env.peek() > t:
                    break
                env.step()
        finally:
            self._wallclock += _time.perf_counter() - wall_start
        return env.now

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run the simulation until all submitted workflows complete.

        May be called after any number of :meth:`step_until` segments; the
        result is identical to an unsegmented run (``wallclock_time``
        accumulates across segments).  A Simulation finalizes only once.
        """
        import time as _time

        if self._has_run:
            raise ConfigurationError("a Simulation object can only be run once")
        self._start()

        wall_start = _time.perf_counter()
        if until is not None:
            self.env.run(until=until)
        else:
            self.env.run(until=self._completion)
        self._wallclock += _time.perf_counter() - wall_start
        return self._finalize()

    def _finalize(self) -> SimulationResult:
        """Stop the background machinery and assemble the result."""
        self._has_run = True
        observer = self.observer
        if self._sampler is not None:
            self._sampler.stop()

        # Stop background flushers so that subsequent env.run calls (if any)
        # are not kept alive forever by the periodical flushing loops.
        for host in (self.platform.hosts.values() if self.platform else []):
            if host.memory_manager is not None:
                host.memory_manager.stop()

        cache_stats: Dict[str, CacheStatistics] = {}
        for host in (self.platform.hosts.values() if self.platform else []):
            if host.memory_manager is not None:
                cache_stats[host.name] = host.memory_manager.stats

        if observer is not None:
            self._publish_final_metrics(observer, cache_stats)

        executors = list(self._executors)
        if self._scheduler is not None:
            executors.extend(self._scheduler.executors)
        app_makespans = {
            executor.label: (executor.end_time - executor.start_time)
            for executor in executors
            if executor.start_time is not None and executor.end_time is not None
        }

        return SimulationResult(
            makespan=self.env.now,
            wallclock_time=self._wallclock,
            operations=list(self.tracer.operations),
            memory_trace=list(self.tracer.memory_trace),
            cache_contents=list(self.tracer.cache_contents),
            cache_stats=cache_stats,
            app_makespans=app_makespans,
            scheduler=(
                self._scheduler.metrics() if self._scheduler is not None else None
            ),
            observer=observer,
        )

    # --------------------------------------------------------------- snapshot
    def snapshot(self, path) -> "Path":
        """Write a crash-recoverable snapshot of the paused simulation.

        Requires a bound build recipe (simulations built through
        ``build_exp2`` / ``build_exp6`` / ``build_exp7`` or any registered
        recipe builder).  The file is written atomically
        (write-temp-then-rename) with a versioned header and a SHA-256
        state fingerprint; see :mod:`repro.snapshot`.
        """
        from repro.snapshot import write_snapshot

        return write_snapshot(self, path)

    @classmethod
    def restore(cls, path, *, verify: bool = True,
                overrides: Optional[Dict[str, object]] = None) -> "Simulation":
        """Rebuild a simulation from a snapshot file, replayed to time T.

        The returned simulation is paused exactly where :meth:`snapshot`
        left the original: rebuild from the embedded recipe, deterministic
        replay to the snapshot time, and (unless ``verify=False``) a
        byte-exact comparison of the replayed state fingerprint against
        the recorded one (:class:`repro.errors.SnapshotIntegrityError` on
        mismatch).  Continue with :meth:`step_until` / :meth:`run`.

        ``overrides`` merges recipe parameters at restore time (warm-start
        sweeps: N policy variants branching off one snapshot); overriding
        disables the fingerprint check, because the replayed history is
        the variant's own, not the snapshot producer's.  See
        :func:`repro.snapshot.restore_simulation`.
        """
        from repro.snapshot import restore_simulation

        return restore_simulation(path, verify=verify, overrides=overrides)

    def _publish_final_metrics(self, observer: Observer,
                               cache_stats: Dict[str, CacheStatistics]) -> None:
        """Fold end-of-run summaries into the telemetry registry.

        Thin adapters over the existing ``as_dict`` surfaces: the cache
        statistics and extent occupancy of every cached host, and the
        scheduler metrics when a cluster scheduler ran.  Keeping these in
        the registry (labelled per host) is what makes shard fan-in
        possible: registries from a sweep's worker processes merge
        associatively.
        """
        registry = observer.registry
        for host_name, stats in cache_stats.items():
            publish(registry, "cache", stats, host=host_name)
        for host in (self.platform.hosts.values() if self.platform else []):
            manager = host.memory_manager
            if manager is not None:
                publish(registry, "cache.extents",
                        ExtentOccupancy.of(manager.lists), host=host.name)
                publish(registry, "cache.policy", manager.policy.stats,
                        host=host.name, policy=manager.policy.name)
        if self._scheduler is not None:
            publish(registry, "scheduler", self._scheduler.metrics())
