"""WRENCH-like workflow simulation layer.

This package provides the high-level abstractions a simulator author works
with, mirroring the WRENCH framework the paper extends:

* :class:`~repro.simulator.workflow.Task` and
  :class:`~repro.simulator.workflow.Workflow` — application descriptions
  (tasks with injected CPU times, input and output files);
* storage services (:mod:`repro.simulator.storage_service`) — cacheless
  (original WRENCH), page-cached (WRENCH-cache, writeback or writethrough)
  and NFS (remote server with its own page cache);
* the workflow executor (:mod:`repro.simulator.wms`);
* execution tracing (:mod:`repro.simulator.tracing`) — per-operation times,
  memory profiles and per-file cache contents, i.e. everything plotted in
  Figures 4-7 of the paper;
* the :class:`~repro.simulator.simulation.Simulation` facade tying it all
  together.
"""

from repro.filesystem.file import File
from repro.simulator.workflow import Task, Workflow
from repro.simulator.storage_service import (
    StorageService,
    PageCachedStorageService,
    NFSStorageService,
)
from repro.simulator.cacheless import SimpleStorageService
from repro.simulator.compute_service import ComputeService
from repro.simulator.tracing import OperationRecord, Tracer
from repro.simulator.wms import WorkflowExecutor
from repro.simulator.simulation import Simulation, SimulationConfig, SimulationResult

__all__ = [
    "File",
    "Task",
    "Workflow",
    "StorageService",
    "SimpleStorageService",
    "PageCachedStorageService",
    "NFSStorageService",
    "ComputeService",
    "OperationRecord",
    "Tracer",
    "WorkflowExecutor",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
]
