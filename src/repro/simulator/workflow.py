"""Workflow and task abstractions.

A :class:`Task` models one application step: it reads input files, performs
an amount of computation (expressed either as flops or as a measured CPU
time, which the paper injects into the simulators), and writes output
files.  A :class:`Workflow` is a DAG of tasks whose dependencies are
derived from file production/consumption (a task consuming a file produced
by another task depends on it) or declared explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import SchedulingError
from repro.filesystem.file import File
from repro.platform.cpu import CPU


class Task:
    """One step of an application.

    Parameters
    ----------
    name:
        Unique task name within its workflow.
    flops:
        Amount of computation.  Use :meth:`from_cpu_time` to create a task
        from a measured CPU time, as the paper does.
    inputs:
        Files read by the task, in read order.
    outputs:
        Files written by the task, in write order.
    release_memory:
        Whether the task releases its anonymous memory when it completes
        (the paper's synthetic application does this after every task).
    """

    def __init__(self, name: str, flops: float = 0.0,
                 inputs: Optional[Sequence[File]] = None,
                 outputs: Optional[Sequence[File]] = None,
                 release_memory: bool = True):
        if flops < 0:
            raise ValueError(f"task {name!r}: flops must be >= 0")
        self.name = name
        self.flops = float(flops)
        self.inputs: List[File] = list(inputs or [])
        self.outputs: List[File] = list(outputs or [])
        self.release_memory = release_memory

    @classmethod
    def from_cpu_time(cls, name: str, cpu_time: float,
                      inputs: Optional[Sequence[File]] = None,
                      outputs: Optional[Sequence[File]] = None,
                      core_speed: float = CPU.DEFAULT_SPEED,
                      release_memory: bool = True) -> "Task":
        """Create a task from a measured CPU time on a core of ``core_speed``.

        The paper measures task CPU times on the real cluster (Tables I and
        II) and injects them as ``cpu_time x 1 Gflops`` of work.
        """
        return cls(
            name,
            flops=cpu_time * core_speed,
            inputs=inputs,
            outputs=outputs,
            release_memory=release_memory,
        )

    def cpu_time(self, core_speed: float = CPU.DEFAULT_SPEED) -> float:
        """Uncontended execution time of the task's computation."""
        return self.flops / core_speed

    @property
    def input_size(self) -> float:
        """Total bytes read by the task."""
        return sum(f.size for f in self.inputs)

    @property
    def output_size(self) -> float:
        """Total bytes written by the task."""
        return sum(f.size for f in self.outputs)

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, flops={self.flops:.3g}, "
            f"inputs={[f.name for f in self.inputs]}, "
            f"outputs={[f.name for f in self.outputs]})"
        )


class Workflow:
    """A DAG of tasks linked by data dependencies."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._explicit_deps: Dict[str, Set[str]] = {}

    # -------------------------------------------------------------- building
    def add_task(self, task: Task) -> Task:
        """Register a task; task names must be unique within the workflow."""
        if task.name in self._tasks:
            raise SchedulingError(
                f"workflow {self.name!r} already has a task named {task.name!r}"
            )
        self._tasks[task.name] = task
        return task

    def add_dependency(self, before: Task, after: Task) -> None:
        """Declare an explicit control dependency ``before -> after``."""
        for task in (before, after):
            if task.name not in self._tasks:
                raise SchedulingError(
                    f"task {task.name!r} is not part of workflow {self.name!r}"
                )
        self._explicit_deps.setdefault(after.name, set()).add(before.name)

    # --------------------------------------------------------------- queries
    @property
    def tasks(self) -> List[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task(self, name: str) -> Task:
        """Return the task registered under ``name``."""
        try:
            return self._tasks[name]
        except KeyError:
            raise SchedulingError(
                f"workflow {self.name!r} has no task named {name!r}"
            ) from None

    def input_files(self) -> List[File]:
        """Files consumed by the workflow but produced by none of its tasks."""
        produced = {f.name for task in self.tasks for f in task.outputs}
        seen: Set[str] = set()
        result: List[File] = []
        for task in self.tasks:
            for file in task.inputs:
                if file.name not in produced and file.name not in seen:
                    seen.add(file.name)
                    result.append(file)
        return result

    def output_files(self) -> List[File]:
        """Files produced by the workflow."""
        seen: Set[str] = set()
        result: List[File] = []
        for task in self.tasks:
            for file in task.outputs:
                if file.name not in seen:
                    seen.add(file.name)
                    result.append(file)
        return result

    def all_files(self) -> List[File]:
        """All files referenced by the workflow."""
        seen: Set[str] = set()
        result: List[File] = []
        for task in self.tasks:
            for file in list(task.inputs) + list(task.outputs):
                if file.name not in seen:
                    seen.add(file.name)
                    result.append(file)
        return result

    def dependencies(self, task: Task) -> List[Task]:
        """Tasks that must complete before ``task`` may start."""
        producers: Dict[str, Task] = {}
        for other in self.tasks:
            for file in other.outputs:
                producers[file.name] = other
        deps: Dict[str, Task] = {}
        for file in task.inputs:
            producer = producers.get(file.name)
            if producer is not None and producer.name != task.name:
                deps[producer.name] = producer
        for name in self._explicit_deps.get(task.name, ()):
            deps[name] = self._tasks[name]
        return list(deps.values())

    def topological_order(self) -> List[Task]:
        """Return the tasks in a dependency-respecting order.

        Raises
        ------
        SchedulingError
            If the workflow contains a dependency cycle.
        """
        order: List[Task] = []
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(task: Task) -> None:
            state = visited.get(task.name)
            if state == 1:
                return
            if state == 0:
                raise SchedulingError(
                    f"workflow {self.name!r} contains a dependency cycle "
                    f"involving task {task.name!r}"
                )
            visited[task.name] = 0
            for dep in self.dependencies(task):
                visit(dep)
            visited[task.name] = 1
            order.append(task)

        for task in self.tasks:
            visit(task)
        return order

    def validate(self) -> None:
        """Check the workflow is executable (no cycles, consistent files)."""
        self.topological_order()

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        return f"<Workflow {self.name!r} tasks={len(self._tasks)}>"


def chain_workflow(name: str, files: Sequence[File], cpu_times: Sequence[float],
                   core_speed: float = CPU.DEFAULT_SPEED) -> Workflow:
    """Build a linear pipeline: task *i* reads ``files[i]`` and writes ``files[i+1]``.

    This is the shape of the paper's synthetic application: ``len(files)``
    must be ``len(cpu_times) + 1``.
    """
    if len(files) != len(cpu_times) + 1:
        raise SchedulingError(
            "chain_workflow needs exactly one more file than tasks "
            f"(got {len(files)} files for {len(cpu_times)} tasks)"
        )
    workflow = Workflow(name)
    for index, cpu_time in enumerate(cpu_times):
        workflow.add_task(
            Task.from_cpu_time(
                f"{name}_task{index + 1}",
                cpu_time,
                inputs=[files[index]],
                outputs=[files[index + 1]],
                core_speed=core_speed,
            )
        )
    return workflow
