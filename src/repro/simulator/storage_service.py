"""Storage services.

A storage service exposes file read/write operations backed by a disk on a
host.  Three flavours are provided:

* :class:`~repro.simulator.cacheless.SimpleStorageService` — the original
  WRENCH behaviour: every byte goes to the disk at disk bandwidth, no page
  cache (defined in its own module to keep the baseline isolated);
* :class:`PageCachedStorageService` — WRENCH-cache: local I/O goes through
  the host's Memory Manager and I/O Controller (writeback or writethrough);
* :class:`NFSStorageService` — a remote storage service reached over the
  network; the *server* maintains its own page cache (read cache enabled,
  writethrough by default as in the paper's Exp 3), the client does not
  cache.

All read/write methods are simulation processes returning an
:class:`~repro.pagecache.io_controller.IOResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.filesystem.nfs import NFSConfig
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.io_controller import IOController, IOResult
from repro.pagecache.memory_manager import MemoryManager
from repro.platform.host import Host
from repro.platform.network import Network
from repro.platform.storage import Disk

#: Accounting tolerance in bytes.
_EPSILON = 1e-6


class StorageService:
    """Base class for storage services."""

    #: Cache behaviour; one of ``"none"``, ``"writeback"``, ``"writethrough"``.
    cache_mode = "none"

    def __init__(self, env: Environment, host: Host, disk: Disk,
                 name: Optional[str] = None):
        self.env = env
        self.host = host
        self.disk = disk
        self.name = name or f"{host.name}:{disk.name}"

    # ------------------------------------------------------------------- api
    def stage_file(self, file: File) -> None:
        """Place ``file`` on the service without simulating any transfer.

        Used to create the input files that exist before the execution
        starts (the page cache is cleared before each run in the paper, so
        staged files are *not* cached).
        """
        self.disk.allocate(file.size)

    def delete_file(self, file: File) -> None:
        """Remove ``file`` from the service, releasing its disk space."""
        self.disk.deallocate(file.size)

    def read_file(self, file: File, *, reader_host: Optional[Host] = None,
                  owner: Optional[str] = None, chunk_size: Optional[float] = None,
                  use_anonymous_memory: bool = True):
        """Read ``file``; simulation process returning an :class:`IOResult`."""
        raise NotImplementedError

    def write_file(self, file: File, *, writer_host: Optional[Host] = None,
                   owner: Optional[str] = None, chunk_size: Optional[float] = None):
        """Write ``file``; simulation process returning an :class:`IOResult`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} cache={self.cache_mode}>"


class PageCachedStorageService(StorageService):
    """Local storage service with a simulated page cache (WRENCH-cache).

    Parameters
    ----------
    env, host, disk:
        Location of the service.  The host must have a memory device.
    cache_config:
        Page cache tunables; a fresh :class:`MemoryManager` is created on
        the host if it does not already have one (one manager per host,
        shared by all its services, like the kernel's single page cache).
    writethrough:
        If true, writes use the writethrough path instead of writeback.
    """

    def __init__(self, env: Environment, host: Host, disk: Disk,
                 cache_config: Optional[PageCacheConfig] = None,
                 writethrough: bool = False, name: Optional[str] = None):
        super().__init__(env, host, disk, name=name)
        if host.memory is None:
            raise ConfigurationError(
                f"host {host.name!r} has no memory device; a page-cached storage "
                "service requires one"
            )
        if host.memory_manager is None:
            host.memory_manager = MemoryManager(
                env, host.memory, cache_config or PageCacheConfig(),
                name=f"{host.name}.mm",
            )
        self.memory_manager: MemoryManager = host.memory_manager
        self.io_controller = IOController(env, self.memory_manager)
        self.writethrough = writethrough

    @property
    def cache_mode(self) -> str:  # type: ignore[override]
        return "writethrough" if self.writethrough else "writeback"

    def _require_local(self, accessor: Optional[Host], verb: str) -> None:
        # This service models *local* I/O only: it has no network path and
        # charges the service host's disk, memory and page cache.  A remote
        # accessor would get a silently free (and wrongly attributed)
        # transfer; multi-node setups must replicate files on every node
        # (Simulation.stage_file_replicated) or use an NFS service.
        if accessor is not None and accessor.name != self.host.name:
            raise ConfigurationError(
                f"host {accessor.name!r} cannot {verb} on the local storage "
                f"service of {self.host.name!r}; replicate the file on "
                f"{accessor.name!r} or use an NFS storage service"
            )

    def read_file(self, file: File, *, reader_host: Optional[Host] = None,
                  owner: Optional[str] = None, chunk_size: Optional[float] = None,
                  use_anonymous_memory: bool = True):
        self._require_local(reader_host, "read")
        result = yield from self.io_controller.read_file(
            file.name,
            file.size,
            self.disk,
            chunk_size=chunk_size,
            anonymous_owner=owner,
            use_anonymous_memory=use_anonymous_memory,
        )
        return result

    def write_file(self, file: File, *, writer_host: Optional[Host] = None,
                   owner: Optional[str] = None, chunk_size: Optional[float] = None):
        self._require_local(writer_host, "write")
        self.disk.allocate(file.size)
        result = yield from self.io_controller.write_file(
            file.name,
            file.size,
            self.disk,
            chunk_size=chunk_size,
            writethrough=self.writethrough,
        )
        return result

    def delete_file(self, file: File) -> None:
        super().delete_file(file)
        self.memory_manager.invalidate_file(file.name)


class NFSStorageService(StorageService):
    """A storage service on a remote host, accessed over the network.

    Reads are served by the *server*: each chunk is read on the server
    (hitting the server's page cache when possible) and then transferred
    over the network to the client.  Writes are transferred to the server
    and then written according to the server cache mode (writethrough in
    the paper's Exp 3: the write is synchronous to the server disk and the
    written data populates the server's read cache).

    The client does not cache data (``NFSConfig.client_read_cache`` /
    ``client_write_cache`` are ignored by the model beyond validation, as
    in the paper), but the client's anonymous memory is still accounted on
    the client host when it has a memory manager.
    """

    def __init__(self, env: Environment, server_host: Host, disk: Disk,
                 network: Network, nfs_config: Optional[NFSConfig] = None,
                 cache_config: Optional[PageCacheConfig] = None,
                 name: Optional[str] = None):
        super().__init__(env, server_host, disk,
                         name=name or f"nfs:{server_host.name}:{disk.name}")
        self.network = network
        self.nfs_config = nfs_config or NFSConfig.hpc_default()
        self._server_has_cache = (
            self.nfs_config.server_cache_mode != "none"
            or self.nfs_config.server_read_cache
        )
        if self._server_has_cache:
            if server_host.memory is None:
                raise ConfigurationError(
                    f"NFS server {server_host.name!r} has no memory device"
                )
            if server_host.memory_manager is None:
                server_host.memory_manager = MemoryManager(
                    env, server_host.memory, cache_config or PageCacheConfig(),
                    name=f"{server_host.name}.mm",
                )
            self.memory_manager: Optional[MemoryManager] = server_host.memory_manager
            self.io_controller: Optional[IOController] = IOController(
                env, self.memory_manager
            )
        else:
            self.memory_manager = None
            self.io_controller = None

    @property
    def cache_mode(self) -> str:  # type: ignore[override]
        return self.nfs_config.server_cache_mode

    # ------------------------------------------------------------------ reads
    def read_file(self, file: File, *, reader_host: Optional[Host] = None,
                  owner: Optional[str] = None, chunk_size: Optional[float] = None,
                  use_anonymous_memory: bool = True):
        if reader_host is None:
            raise ConfigurationError("NFS reads require the reading host")
        chunk = chunk_size or (
            self.memory_manager.config.chunk_size
            if self.memory_manager is not None
            else PageCacheConfig().chunk_size
        )
        start = self.env.now
        result = IOResult(file.name, file.size, start, start)
        remaining = file.size
        client_mm = reader_host.memory_manager
        while remaining > _EPSILON:
            this_chunk = min(chunk, remaining)
            if self.nfs_config.server_read_cache and self.io_controller is not None:
                disk_read, cache_read = yield from self.io_controller.read_chunk(
                    file.name,
                    file.size,
                    this_chunk,
                    self.disk,
                    use_anonymous_memory=False,
                )
                result.storage_bytes += disk_read
                result.cache_bytes += cache_read
            else:
                yield self.disk.read(this_chunk, label=f"nfs-read:{file.name}")
                result.storage_bytes += this_chunk
            yield self.network.transfer(
                self.host.name, reader_host.name, this_chunk,
                label=f"nfs:{file.name}",
            )
            if use_anonymous_memory and client_mm is not None:
                client_mm.use_anonymous_memory(this_chunk, owner=owner)
            result.chunks += 1
            remaining -= this_chunk
        result.end_time = self.env.now
        return result

    # ----------------------------------------------------------------- writes
    def write_file(self, file: File, *, writer_host: Optional[Host] = None,
                   owner: Optional[str] = None, chunk_size: Optional[float] = None):
        if writer_host is None:
            raise ConfigurationError("NFS writes require the writing host")
        self.disk.allocate(file.size)
        chunk = chunk_size or (
            self.memory_manager.config.chunk_size
            if self.memory_manager is not None
            else PageCacheConfig().chunk_size
        )
        start = self.env.now
        result = IOResult(file.name, file.size, start, start)
        remaining = file.size
        mode = self.nfs_config.server_cache_mode
        while remaining > _EPSILON:
            this_chunk = min(chunk, remaining)
            yield self.network.transfer(
                writer_host.name, self.host.name, this_chunk,
                label=f"nfs:{file.name}",
            )
            if mode == "writethrough" and self.io_controller is not None:
                cached = yield from self.io_controller.write_chunk_through(
                    file.name, this_chunk, self.disk
                )
                result.storage_bytes += this_chunk
                result.cache_bytes += cached
            elif mode == "writeback" and self.io_controller is not None:
                cache_written, flushed = yield from self.io_controller.write_chunk(
                    file.name, this_chunk, self.disk
                )
                result.cache_bytes += cache_written
                result.storage_bytes += flushed
            else:
                yield self.disk.write(this_chunk, label=f"nfs-write:{file.name}")
                result.storage_bytes += this_chunk
            result.chunks += 1
            remaining -= this_chunk
        result.end_time = self.env.now
        return result

    def delete_file(self, file: File) -> None:
        super().delete_file(file)
        if self.memory_manager is not None:
            self.memory_manager.invalidate_file(file.name)
