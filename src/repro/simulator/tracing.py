"""Execution tracing.

The paper's evaluation relies on three kinds of observations:

* per-operation times (Read 1, Write 1, ... of each task) — used to compute
  the absolute relative simulation errors of Figures 4a, 6;
* memory profiles over time (total, used, cache, dirty) — Figure 4b,
  collected on the real system with ``atop``/``collectl``;
* per-file cache contents after each application I/O — Figure 4c.

The :class:`Tracer` collects all three: storage services and the workflow
executor report :class:`OperationRecord` objects, and an optional sampling
process snapshots the memory manager at a fixed interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.des.environment import Environment
from repro.pagecache.memory_manager import MemoryManager, MemorySnapshot


@dataclass
class OperationRecord:
    """One traced operation (file read, file write or computation)."""

    app: str
    task: str
    kind: str  # "read", "write" or "compute"
    filename: Optional[str]
    size: float
    start: float
    end: float
    #: Bytes served by / written to the page cache.
    cache_bytes: float = 0.0
    #: Bytes read from or written to storage synchronously.
    storage_bytes: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated duration of the operation."""
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        """Return the record as a plain dictionary (for reports)."""
        return {
            "app": self.app,
            "task": self.task,
            "kind": self.kind,
            "filename": self.filename,
            "size": self.size,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "cache_bytes": self.cache_bytes,
            "storage_bytes": self.storage_bytes,
        }


@dataclass
class CacheContentRecord:
    """Per-file cache content observed right after an I/O operation (Fig 4c)."""

    app: str
    task: str
    kind: str
    filename: Optional[str]
    time: float
    contents: Dict[str, float] = field(default_factory=dict)


class Tracer:
    """Collects operation records, memory snapshots and cache contents.

    When telemetry is enabled the tracer doubles as a compatibility
    adapter onto :mod:`repro.obs`: every :class:`OperationRecord` is
    mirrored as an ``"operation"`` span and every memory snapshot as a
    counter-track sample.  The public API (``operations``,
    ``memory_trace``, ``cache_contents`` and the query helpers) is
    unchanged, so the experiments and their error metrics keep reading
    the same lists whether or not an observer is attached.
    """

    def __init__(self, env: Environment, sample_interval: Optional[float] = None,
                 observer=None):
        self.env = env
        self.sample_interval = sample_interval
        #: The telemetry sink (``repro.obs.Observer``) operations are
        #: mirrored to.  Defaults to the environment's nullable hook so a
        #: tracer built before telemetry wiring still picks it up lazily.
        self.observer = observer
        self.operations: List[OperationRecord] = []
        self.memory_trace: List[MemorySnapshot] = []
        self.cache_contents: List[CacheContentRecord] = []
        self._memory_managers: List[MemoryManager] = []
        self._sampler_started = False

    def _observer(self):
        return self.observer if self.observer is not None else self.env.observer

    # ----------------------------------------------------------- registration
    def attach_memory_manager(self, memory_manager: MemoryManager) -> None:
        """Sample ``memory_manager`` (the first one attached) periodically."""
        if memory_manager not in self._memory_managers:
            self._memory_managers.append(memory_manager)
        if self.sample_interval and not self._sampler_started:
            self._sampler_started = True
            self.env.process(self._sampler(), name="tracer-sampler")

    def _sampler(self):
        while True:
            self.sample_now()
            yield self.env.timeout(self.sample_interval)

    def sample_now(self) -> Optional[MemorySnapshot]:
        """Record a memory snapshot immediately (first attached manager)."""
        if not self._memory_managers:
            return None
        snapshot = self._memory_managers[0].snapshot()
        self.memory_trace.append(snapshot)
        observer = self._observer()
        if observer is not None:
            observer.counter_sample(
                "memory", "memory", snapshot.time,
                {"used": snapshot.used, "cached": snapshot.cached,
                 "dirty": snapshot.dirty, "anonymous": snapshot.anonymous},
            )
        return snapshot

    # --------------------------------------------------------------- recording
    def record_operation(self, record: OperationRecord) -> None:
        """Store an operation record and snapshot the cache contents."""
        self.operations.append(record)
        observer = self._observer()
        if observer is not None:
            attrs = {"kind": record.kind, "size": record.size}
            if record.filename:
                attrs["filename"] = record.filename
            if record.cache_bytes or record.storage_bytes:
                attrs["cache_bytes"] = record.cache_bytes
                attrs["storage_bytes"] = record.storage_bytes
            observer.complete(
                f"{record.task}:{record.kind}", "operation",
                f"app:{record.app}", record.start, record.end, attrs,
            )
        if self._memory_managers and record.kind in ("read", "write"):
            self.cache_contents.append(
                CacheContentRecord(
                    app=record.app,
                    task=record.task,
                    kind=record.kind,
                    filename=record.filename,
                    time=record.end,
                    contents=self._memory_managers[0].cache_content(),
                )
            )

    # ----------------------------------------------------------------- queries
    def operations_of_kind(self, kind: str) -> List[OperationRecord]:
        """All records of a given kind ("read", "write" or "compute")."""
        return [record for record in self.operations if record.kind == kind]

    def operation(self, app: str, task: str, kind: str,
                  index: int = 0) -> OperationRecord:
        """Return the ``index``-th operation of ``kind`` for ``(app, task)``."""
        matches = [
            record
            for record in self.operations
            if record.app == app and record.task == task and record.kind == kind
        ]
        return matches[index]

    def durations_by_operation(self) -> Dict[Tuple[str, str, str], float]:
        """Mapping ``(app, task, kind) -> summed duration``."""
        durations: Dict[Tuple[str, str, str], float] = {}
        for record in self.operations:
            key = (record.app, record.task, record.kind)
            durations[key] = durations.get(key, 0.0) + record.duration
        return durations

    def total_duration(self, kind: str) -> float:
        """Total simulated time spent in operations of ``kind``."""
        return sum(record.duration for record in self.operations_of_kind(kind))

    def makespan(self) -> float:
        """Time of the last recorded operation end."""
        if not self.operations:
            return 0.0
        return max(record.end for record in self.operations)

    def __repr__(self) -> str:
        return (
            f"<Tracer operations={len(self.operations)} "
            f"samples={len(self.memory_trace)}>"
        )
