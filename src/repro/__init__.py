"""pagecache-sim: simulation of the Linux page cache for data-intensive applications.

This package is a from-scratch Python reproduction of the simulation model
described in:

    H.-D. Do, V. Hayot-Sasson, R. Ferreira da Silva, C. Steele, H. Casanova,
    T. Glatard, "Modeling the Linux page cache for accurate simulation of
    data-intensive applications", IEEE CLUSTER 2021 (arXiv:2101.01335).

The package is organised in layers:

``repro.des``
    A discrete-event simulation kernel (environment, events, processes,
    resources) playing the role SimGrid/SimPy play in the original work.
``repro.platform``
    Hardware models: disks, memory devices and network links with
    fair-sharing bandwidth models, grouped into hosts and platforms.
``repro.pagecache``
    The paper's primary contribution: data blocks, two-list LRU, the
    Memory Manager and the I/O Controller (Algorithms 1-3).
``repro.filesystem``
    Files, mount points, local file systems and an NFS client/server model.
``repro.simulator``
    A WRENCH-like workflow simulation facade: storage services, compute
    services, workflows, a workflow management system and execution tracing.
``repro.scheduler``
    A cluster batch-scheduler subsystem: job queues with seeded arrival
    generators, pluggable scheduling policies (FIFO, SJF, EASY
    backfilling) and placement strategies (round-robin, least-loaded,
    cache-locality-aware).
``repro.apps``
    The applications evaluated in the paper (synthetic pipeline, Nighres).
``repro.experiments``
    The evaluation harness regenerating every table and figure.
``repro.snapshot``
    Checkpoint/restore of full simulator state: versioned snapshot
    files (recipe + replay-to-T + verified state fingerprint), periodic
    checkpointing with Young/Daly-tuned intervals, crash-recoverable
    runs and resumable sweeps.
"""

from repro.version import __version__

from repro.des import Environment
from repro.units import B, KB, MB, GB, KiB, MiB, GiB
from repro.simulator import (
    File,
    Task,
    Workflow,
    Simulation,
    SimulationConfig,
)
from repro.pagecache import (
    Block,
    LRUList,
    PageCacheConfig,
    MemoryManager,
    IOController,
)
from repro.rng import DeterministicRNG
from repro.scheduler import (
    ClusterScheduler,
    Job,
    SchedulerMetrics,
)

__all__ = [
    "__version__",
    "Environment",
    "B",
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "File",
    "Task",
    "Workflow",
    "Simulation",
    "SimulationConfig",
    "Block",
    "LRUList",
    "PageCacheConfig",
    "MemoryManager",
    "IOController",
    "DeterministicRNG",
    "ClusterScheduler",
    "Job",
    "SchedulerMetrics",
]
