"""Snapshot, restore and checkpointed execution of simulations.

The crash-recovery contract, end to end:

1. a run advances with :meth:`Simulation.step_until` and calls
   :func:`write_snapshot` at each boundary — the file stores the build
   recipe, the simulated time ``T`` and a fingerprint of the captured
   state;
2. after a crash, :func:`restore_simulation` rebuilds the simulation from
   the recipe, *replays* it to ``T`` (generators cannot be pickled, but
   the simulator is deterministic — replay reaches the exact same state)
   and verifies the replayed fingerprint against the stored one;
3. the restored simulation continues exactly as the original would have:
   a run snapshotted at ``T`` and restored produces byte-identical results
   to the uninterrupted run.

:func:`run_checkpointed` packages the loop — step to each boundary of a
:class:`~repro.snapshot.plan.SnapshotPlan`, snapshot, prune old files,
finish — and :func:`resume_checkpointed` restarts it from the newest
snapshot in a directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import SnapshotError, SnapshotIntegrityError
from repro.snapshot.canonical import fingerprint, to_jsonable
from repro.snapshot.capture import capture_state
from repro.snapshot.plan import SnapshotPlan
from repro.snapshot.recipe import SimRecipe, build_from_recipe
from repro.snapshot.store import (
    FORMAT,
    VERSION,
    read_snapshot_doc,
    write_snapshot_doc,
)

#: Default snapshot file prefix; files sort lexicographically by boundary.
SNAPSHOT_PREFIX = "snap"


def write_snapshot(sim, path: Union[str, Path]) -> Path:
    """Snapshot ``sim`` (paused at a :meth:`step_until` boundary) to ``path``.

    Requires a recipe-bound (see :meth:`Simulation.bind_recipe`), started
    simulation: the snapshot records *how to rebuild* the simulation plus
    a fingerprint of its current state, so an unbuildable or unstarted
    simulation cannot be meaningfully snapshotted.
    """
    recipe = sim.recipe
    if recipe is None:
        raise SnapshotError(
            "this simulation has no build recipe bound; construct it via an "
            "experiment builder (build_exp2/build_exp6/build_exp7) or call "
            "bind_recipe() before snapshotting"
        )
    if not sim._started:
        raise SnapshotError(
            "snapshot a simulation only after it has started; advance it "
            "with step_until(t) first"
        )
    state = to_jsonable(capture_state(sim))
    doc = {
        "format": FORMAT,
        "version": VERSION,
        "t": sim.env.now,
        "experiment": recipe.experiment,
        "params": recipe.encoded()["params"],
        "fingerprint": fingerprint(state),
        "state": state,
    }
    return write_snapshot_doc(doc, path)


def restore_simulation(path: Union[str, Path], *, verify: bool = True,
                       overrides: Optional[dict] = None):
    """Rebuild the snapshotted simulation and replay it to snapshot time.

    With ``verify=True`` (the default) the replayed state's fingerprint is
    checked against the one stored in the file;
    :class:`~repro.errors.SnapshotIntegrityError` is raised on mismatch.
    The returned simulation is paused at the snapshot time — continue it
    with :meth:`step_until` / :meth:`run`.

    ``overrides`` merges into the embedded recipe's parameters before the
    rebuild (warm-start sweeps: N variants branch off one snapshot).  An
    overridden restore replays *the variant's own* history from t=0 to the
    snapshot time, so the stored fingerprint cannot apply and verification
    is skipped.  For overrides that can be applied to the *live* restored
    state without rebuilding (scheduler policy/placement), prefer
    :func:`warm_start_values`, which also amortizes a single verified
    replay across all variants.
    """
    path = Path(path)
    doc = read_snapshot_doc(path)
    recipe = SimRecipe.decode(doc)
    if overrides:
        recipe = SimRecipe(recipe.experiment,
                           {**recipe.params, **overrides})
        verify = False
    sim = build_from_recipe(recipe)
    sim.step_until(doc["t"])
    if verify:
        replayed = fingerprint(to_jsonable(capture_state(sim)))
        if replayed != doc["fingerprint"]:
            raise SnapshotIntegrityError(
                f"restored state does not match snapshot {path}: replay "
                f"fingerprint {replayed} != stored {doc['fingerprint']} "
                "(corrupt file, different code version, or lost determinism)"
            )
    return sim


# ------------------------------------------------------------- warm starts
#: Recipe parameters that can be swapped on a *live* (already replayed)
#: simulation without rebuilding it.  Maps parameter name to an applier.
def _apply_policy(sim, value):
    from repro.scheduler.policies import make_policy

    sim.scheduler.policy = make_policy(value)


def _apply_placement(sim, value):
    from repro.scheduler.placement import make_placement

    sim.scheduler.placement = make_placement(value)


LIVE_OVERRIDES = {
    "policy": _apply_policy,
    "placement": _apply_placement,
}


def apply_live_overrides(sim, overrides: dict) -> None:
    """Apply ``overrides`` to a live simulation (no rebuild, no replay).

    Only parameters whose effect is forward-looking can be swapped on a
    running simulation — currently the scheduler's ``policy`` and
    ``placement``.  Anything else (workload shape, platform size, cache
    configuration) is baked into the simulated history and raises.
    """
    if getattr(sim, "scheduler", None) is None and overrides:
        raise SnapshotError(
            "live overrides require a cluster scheduler; this snapshot "
            "has none"
        )
    for key, value in overrides.items():
        applier = LIVE_OVERRIDES.get(key)
        if applier is None:
            raise SnapshotError(
                f"parameter {key!r} cannot be applied to a live simulation "
                f"(supported: {sorted(LIVE_OVERRIDES)}); use "
                "restore_simulation(path, overrides=...) to rebuild the "
                "variant from scratch instead"
            )
        applier(sim, value)


def warm_start_values(path: Union[str, Path], variants, *,
                      finish=None, verify: bool = True) -> list:
    """Branch N live-override variants off one snapshot; return their values.

    Restores (replays + optionally verifies) the snapshot **once**, then
    runs each variant in a forked child process sharing that replayed
    state copy-on-write: warm cost is one replay plus N tails, against N
    full runs for cold starts.  Each ``variants[i]`` is a dict of live
    overrides (see :data:`LIVE_OVERRIDES`); ``finish`` maps
    ``(recipe, result)`` to the value returned per variant (default: the
    raw :class:`~repro.simulator.simulation.SimulationResult`, which must
    then be picklable).

    On platforms without ``os.fork`` each variant falls back to its own
    restore (correct, but no warm-start savings).
    """
    import os
    import pickle

    variants = list(variants)
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX fallback
        values = []
        for overrides in variants:
            sim = restore_simulation(path, verify=verify)
            apply_live_overrides(sim, overrides)
            result = sim.run()
            values.append(finish(sim.recipe, result) if finish else result)
        return values

    template = restore_simulation(path, verify=verify)
    recipe = template.recipe
    values = []
    for overrides in variants:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: the template is pristine (the parent never advances
            # it), so apply the variant's overrides and run the tail.
            status = 1
            try:
                os.close(read_fd)
                apply_live_overrides(template, overrides)
                result = template.run()
                value = finish(recipe, result) if finish else result
                with os.fdopen(write_fd, "wb") as pipe:
                    pickle.dump(("ok", value), pipe)
                status = 0
            except BaseException as exc:  # noqa: BLE001 - crosses processes
                try:
                    with os.fdopen(write_fd, "wb") as pipe:
                        pickle.dump(("error", repr(exc)), pipe)
                except Exception:
                    pass
            finally:
                os._exit(status)
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as pipe:
            payload = pipe.read()
        _, exit_status = os.waitpid(pid, 0)
        if not payload:
            raise SnapshotError(
                f"warm-start variant {overrides!r} died without reporting "
                f"a value (wait status {exit_status})"
            )
        kind, value = pickle.loads(payload)
        if kind != "ok":
            raise SnapshotError(
                f"warm-start variant {overrides!r} failed: {value}"
            )
        values.append(value)
    return values


# -------------------------------------------------------------- checkpointing
def snapshot_path(directory: Union[str, Path], boundary_index: int, *,
                  prefix: str = SNAPSHOT_PREFIX) -> Path:
    """The canonical file name for boundary ``k`` (zero-padded, sortable)."""
    return Path(directory) / f"{prefix}-{boundary_index:08d}.json"


def latest_snapshot(directory: Union[str, Path], *,
                    prefix: str = SNAPSHOT_PREFIX) -> Optional[Path]:
    """The newest snapshot file in ``directory``, or ``None``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(f"{prefix}-*.json"))
    return candidates[-1] if candidates else None


def run_checkpointed(sim, plan: SnapshotPlan,
                     directory: Union[str, Path], *,
                     prefix: str = SNAPSHOT_PREFIX) -> Tuple[object, List[Path]]:
    """Run ``sim`` to completion, snapshotting at every plan boundary.

    Boundaries are anchored at ``t=0`` regardless of where ``sim``
    currently is, so a restored simulation falls back onto the same
    snapshot grid as the original run.  At most ``plan.keep`` snapshot
    files are retained (oldest pruned first).  Returns the simulation
    result and the snapshot paths still on disk.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = [
        path for path in sorted(directory.glob(f"{prefix}-*.json"))
    ]
    for index, boundary in enumerate(plan.boundaries(), start=1):
        if boundary <= sim.env.now:
            continue
        sim.step_until(boundary)
        if sim.completed:
            break
        written.append(write_snapshot(sim, snapshot_path(
            directory, index, prefix=prefix)))
        while len(written) > plan.keep:
            stale = written.pop(0)
            try:
                stale.unlink()
            except OSError:
                pass
    result = sim.run()
    return result, written


def resume_checkpointed(directory: Union[str, Path], plan: SnapshotPlan, *,
                        prefix: str = SNAPSHOT_PREFIX,
                        verify: bool = True) -> Tuple[object, List[Path]]:
    """Resume a crashed :func:`run_checkpointed` from its newest snapshot."""
    newest = latest_snapshot(directory, prefix=prefix)
    if newest is None:
        raise SnapshotError(
            f"no {prefix}-*.json snapshot found in {directory}; "
            "nothing to resume"
        )
    sim = restore_simulation(newest, verify=verify)
    return run_checkpointed(sim, plan, directory, prefix=prefix)
