"""Snapshot, restore and checkpointed execution of simulations.

The crash-recovery contract, end to end:

1. a run advances with :meth:`Simulation.step_until` and calls
   :func:`write_snapshot` at each boundary — the file stores the build
   recipe, the simulated time ``T`` and a fingerprint of the captured
   state;
2. after a crash, :func:`restore_simulation` rebuilds the simulation from
   the recipe, *replays* it to ``T`` (generators cannot be pickled, but
   the simulator is deterministic — replay reaches the exact same state)
   and verifies the replayed fingerprint against the stored one;
3. the restored simulation continues exactly as the original would have:
   a run snapshotted at ``T`` and restored produces byte-identical results
   to the uninterrupted run.

:func:`run_checkpointed` packages the loop — step to each boundary of a
:class:`~repro.snapshot.plan.SnapshotPlan`, snapshot, prune old files,
finish — and :func:`resume_checkpointed` restarts it from the newest
snapshot in a directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import SnapshotError, SnapshotIntegrityError
from repro.snapshot.canonical import fingerprint, to_jsonable
from repro.snapshot.capture import capture_state
from repro.snapshot.plan import SnapshotPlan
from repro.snapshot.recipe import SimRecipe, build_from_recipe
from repro.snapshot.store import (
    FORMAT,
    VERSION,
    read_snapshot_doc,
    write_snapshot_doc,
)

#: Default snapshot file prefix; files sort lexicographically by boundary.
SNAPSHOT_PREFIX = "snap"


def write_snapshot(sim, path: Union[str, Path]) -> Path:
    """Snapshot ``sim`` (paused at a :meth:`step_until` boundary) to ``path``.

    Requires a recipe-bound (see :meth:`Simulation.bind_recipe`), started
    simulation: the snapshot records *how to rebuild* the simulation plus
    a fingerprint of its current state, so an unbuildable or unstarted
    simulation cannot be meaningfully snapshotted.
    """
    recipe = sim.recipe
    if recipe is None:
        raise SnapshotError(
            "this simulation has no build recipe bound; construct it via an "
            "experiment builder (build_exp2/build_exp6/build_exp7) or call "
            "bind_recipe() before snapshotting"
        )
    if not sim._started:
        raise SnapshotError(
            "snapshot a simulation only after it has started; advance it "
            "with step_until(t) first"
        )
    state = to_jsonable(capture_state(sim))
    doc = {
        "format": FORMAT,
        "version": VERSION,
        "t": sim.env.now,
        "experiment": recipe.experiment,
        "params": recipe.encoded()["params"],
        "fingerprint": fingerprint(state),
        "state": state,
    }
    return write_snapshot_doc(doc, path)


def restore_simulation(path: Union[str, Path], *, verify: bool = True):
    """Rebuild the snapshotted simulation and replay it to snapshot time.

    With ``verify=True`` (the default) the replayed state's fingerprint is
    checked against the one stored in the file;
    :class:`~repro.errors.SnapshotIntegrityError` is raised on mismatch.
    The returned simulation is paused at the snapshot time — continue it
    with :meth:`step_until` / :meth:`run`.
    """
    path = Path(path)
    doc = read_snapshot_doc(path)
    recipe = SimRecipe.decode(doc)
    sim = build_from_recipe(recipe)
    sim.step_until(doc["t"])
    if verify:
        replayed = fingerprint(to_jsonable(capture_state(sim)))
        if replayed != doc["fingerprint"]:
            raise SnapshotIntegrityError(
                f"restored state does not match snapshot {path}: replay "
                f"fingerprint {replayed} != stored {doc['fingerprint']} "
                "(corrupt file, different code version, or lost determinism)"
            )
    return sim


# -------------------------------------------------------------- checkpointing
def snapshot_path(directory: Union[str, Path], boundary_index: int, *,
                  prefix: str = SNAPSHOT_PREFIX) -> Path:
    """The canonical file name for boundary ``k`` (zero-padded, sortable)."""
    return Path(directory) / f"{prefix}-{boundary_index:08d}.json"


def latest_snapshot(directory: Union[str, Path], *,
                    prefix: str = SNAPSHOT_PREFIX) -> Optional[Path]:
    """The newest snapshot file in ``directory``, or ``None``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(f"{prefix}-*.json"))
    return candidates[-1] if candidates else None


def run_checkpointed(sim, plan: SnapshotPlan,
                     directory: Union[str, Path], *,
                     prefix: str = SNAPSHOT_PREFIX) -> Tuple[object, List[Path]]:
    """Run ``sim`` to completion, snapshotting at every plan boundary.

    Boundaries are anchored at ``t=0`` regardless of where ``sim``
    currently is, so a restored simulation falls back onto the same
    snapshot grid as the original run.  At most ``plan.keep`` snapshot
    files are retained (oldest pruned first).  Returns the simulation
    result and the snapshot paths still on disk.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = [
        path for path in sorted(directory.glob(f"{prefix}-*.json"))
    ]
    for index, boundary in enumerate(plan.boundaries(), start=1):
        if boundary <= sim.env.now:
            continue
        sim.step_until(boundary)
        if sim.completed:
            break
        written.append(write_snapshot(sim, snapshot_path(
            directory, index, prefix=prefix)))
        while len(written) > plan.keep:
            stale = written.pop(0)
            try:
                stale.unlink()
            except OSError:
                pass
    result = sim.run()
    return result, written


def resume_checkpointed(directory: Union[str, Path], plan: SnapshotPlan, *,
                        prefix: str = SNAPSHOT_PREFIX,
                        verify: bool = True) -> Tuple[object, List[Path]]:
    """Resume a crashed :func:`run_checkpointed` from its newest snapshot."""
    newest = latest_snapshot(directory, prefix=prefix)
    if newest is None:
        raise SnapshotError(
            f"no {prefix}-*.json snapshot found in {directory}; "
            "nothing to resume"
        )
    sim = restore_simulation(newest, verify=verify)
    return run_checkpointed(sim, plan, directory, prefix=prefix)
