"""Checkpoint-interval planning: fixed, Young and Daly intervals.

How often should a long run snapshot itself?  Too often and the run pays
the checkpoint cost for nothing; too rarely and a crash throws away a lot
of replayed work.  The classical answers, as functions of the checkpoint
cost ``delta`` (here: simulated seconds per snapshot boundary) and the
system's mean time between failures ``M``:

* **Young's first-order approximation** — ``tau = sqrt(2 * delta * M)``;
* **Daly's higher-order formula** — a perturbation solution of the full
  optimization that stays accurate when ``delta`` is not negligible
  against ``M``::

      tau = sqrt(2*delta*M) * [1 + sqrt(delta/(2M))/3 + (delta/(2M))/9] - delta

  for ``delta < 2M``, and ``tau = M`` otherwise (checkpointing cannot pay
  for itself past that point).

A cluster's effective MTBF aggregates the per-node failure streams of a
:class:`~repro.faults.plan.FaultPlan`: independent exponential streams
superpose, so failure *rates* add — ``1/M_eff = sum(1/mtbf_i)`` over every
expanded (spec, node) stream.  This closes PR 8's open follow-up
("checkpoint-interval tuning against the MTBF"): build the plan straight
from the fault plan with :meth:`SnapshotPlan.from_fault_plan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.faults.plan import ALL_NODES, FaultPlan


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 * delta * M)``."""
    _validate(checkpoint_cost, mtbf)
    if math.isinf(mtbf):
        return math.inf
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimal checkpoint interval.

    Reduces to Young's estimate as ``delta / M -> 0`` and degrades
    gracefully (``tau = M``) when the checkpoint cost reaches ``2 * M``.
    """
    _validate(checkpoint_cost, mtbf)
    if math.isinf(mtbf):
        return math.inf
    ratio = checkpoint_cost / (2.0 * mtbf)
    if ratio >= 1.0:
        return mtbf
    return (
        math.sqrt(2.0 * checkpoint_cost * mtbf)
        * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
        - checkpoint_cost
    )


def effective_mtbf(plan: FaultPlan,
                   node_names: Sequence[str]) -> float:
    """The cluster-wide MTBF implied by a fault plan.

    Expands wildcard specs over ``node_names`` (exactly as the
    :class:`~repro.faults.injector.FaultInjector` does) and superposes the
    independent exponential crash streams: rates add, so
    ``M_eff = 1 / sum(1/mtbf_i)``.  Streams capped at zero failures are
    skipped; a plan with no crash stream has infinite MTBF.
    """
    rate = 0.0
    for spec in plan.node_faults:
        if spec.max_failures == 0:
            continue
        n_streams = len(node_names) if spec.node == ALL_NODES else 1
        rate += n_streams / spec.mtbf
    if rate <= 0.0:
        return math.inf
    return 1.0 / rate


def _validate(checkpoint_cost: float, mtbf: float) -> None:
    if checkpoint_cost <= 0:
        raise ConfigurationError(
            f"checkpoint cost must be > 0, got {checkpoint_cost}"
        )
    if mtbf <= 0:
        raise ConfigurationError(f"mtbf must be > 0, got {mtbf}")


@dataclass(frozen=True)
class SnapshotPlan:
    """When (in simulated time) a checkpointed run snapshots itself.

    Attributes
    ----------
    interval:
        Simulated seconds between snapshot boundaries.
    keep:
        Snapshot files retained on disk (older boundaries are pruned).
    rule:
        How the interval was chosen (``"fixed"``, ``"young"`` or
        ``"daly"``) — informational.
    mtbf:
        The MTBF the interval was tuned against (``None`` for fixed
        plans) — informational.
    """

    interval: float
    keep: int = 2
    rule: str = "fixed"
    mtbf: Optional[float] = None

    def __post_init__(self) -> None:
        if not (self.interval > 0):
            raise ConfigurationError(
                f"snapshot interval must be > 0, got {self.interval}"
            )
        if self.keep < 1:
            raise ConfigurationError(
                f"snapshot plan must keep at least one file, got {self.keep}"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def fixed(cls, interval: float, *, keep: int = 2) -> "SnapshotPlan":
        """A plain fixed-interval plan."""
        return cls(interval=interval, keep=keep, rule="fixed")

    @classmethod
    def young(cls, checkpoint_cost: float, mtbf: float, *,
              keep: int = 2) -> "SnapshotPlan":
        """Young-optimal interval for the given cost and MTBF."""
        return cls(interval=young_interval(checkpoint_cost, mtbf),
                   keep=keep, rule="young", mtbf=mtbf)

    @classmethod
    def daly(cls, checkpoint_cost: float, mtbf: float, *,
             keep: int = 2) -> "SnapshotPlan":
        """Daly-optimal interval for the given cost and MTBF."""
        return cls(interval=daly_interval(checkpoint_cost, mtbf),
                   keep=keep, rule="daly", mtbf=mtbf)

    @classmethod
    def from_fault_plan(cls, fault_plan: FaultPlan,
                        node_names: Sequence[str], *,
                        checkpoint_cost: float = 1.0,
                        rule: str = "daly",
                        keep: int = 2) -> "SnapshotPlan":
        """Tune the interval against a fault plan's effective MTBF.

        Raises if the plan injects no crashes at all (infinite MTBF means
        no finite interval is optimal — use :meth:`fixed` instead).
        """
        mtbf = effective_mtbf(fault_plan, node_names)
        if math.isinf(mtbf):
            raise ConfigurationError(
                "the fault plan injects no node crashes (infinite MTBF); "
                "use SnapshotPlan.fixed for fault-free runs"
            )
        if rule == "young":
            return cls.young(checkpoint_cost, mtbf, keep=keep)
        if rule == "daly":
            return cls.daly(checkpoint_cost, mtbf, keep=keep)
        raise ConfigurationError(
            f"unknown interval rule {rule!r}; use 'young' or 'daly'"
        )

    # -------------------------------------------------------------- boundaries
    def boundaries(self, start: float = 0.0) -> Iterator[float]:
        """The snapshot times ``start + k * interval`` for ``k >= 1``."""
        k = 1
        while True:
            yield start + k * self.interval
            k += 1
