"""Deterministic capture of a live simulation's state.

:func:`capture_state` walks a paused :class:`~repro.simulator.simulation.
Simulation` and reduces every stateful subsystem to plain, canonically
ordered data:

* the DES event heap — every pending ``(time, priority, eid, event)``
  entry, tombstones included (cancelled-but-unpopped timeouts are real
  state: a replay must carry the same tombstones);
* every host's page cache — extent runs of both LRU lists in LRU order,
  with each fragment's ``(size, entry_time, last_access, stamp)`` key,
  plus the memory-manager accounting and cache statistics;
* in-flight transfers — the remaining bytes of every flow on every
  channel (mid-transfer snapshots are legal and pinned);
* the cluster scheduler — queue contents, per-node state (free cores,
  running jobs, draining/left flags, failure counts), per-job progress,
  completed-job records, and the executors' preemption checkpoints
  (completed tasks, partial compute credit, suspension flags);
* RNG streams — seed, draw count and state digest of every live fault
  stream (:mod:`repro.rng` bookkeeping);
* the telemetry metrics registry, when an observer is attached.

The result is JSON-able and deterministic: two simulations that processed
the same events hold byte-identical captures, which is what the snapshot
fingerprint (and the restore-time integrity check) is computed from.
Large append-only traces (operation records, memory samples) are captured
as SHA-256 digests rather than inline — equality is what matters, not
re-readability.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.snapshot.canonical import fingerprint

#: Capture format version; bumped when the capture layout changes (a
#: restore compares fingerprints, so layouts must match exactly).
CAPTURE_VERSION = 1


def capture_state(sim) -> Dict[str, Any]:
    """Reduce a (paused) simulation to canonical plain data."""
    state: Dict[str, Any] = {
        "capture_version": CAPTURE_VERSION,
        "t": sim.env.now,
        "completed": sim.completed,
        "heap": _capture_heap(sim.env),
        "hosts": _capture_hosts(sim),
        "tracer": _capture_tracer(sim.tracer),
    }
    if sim.scheduler is not None:
        state["scheduler"] = _capture_scheduler(sim.scheduler)
    if sim._executors:
        state["executors"] = [
            _capture_executor(executor) for executor in sim._executors
        ]
    if sim._fault_injector is not None:
        state["faults"] = _capture_faults(sim._fault_injector)
    observer = sim.observer
    if observer is not None:
        state["metrics"] = observer.registry.as_dict()
    return state


# ------------------------------------------------------------------- sections
def _capture_heap(env) -> List[List[Any]]:
    """Pending heap entries in canonical (time, priority, eid) order.

    Event ids are allocation-ordered and — because :meth:`Simulation.
    step_until` inserts no guard events — identical between a stepped and
    an unstepped run, so they can be captured verbatim.
    """
    return [
        [time, priority, eid, type(event).__name__, bool(event._defunct)]
        for time, priority, eid, event in sorted(
            env._queue, key=lambda entry: entry[:3]
        )
    ]


def _capture_hosts(sim) -> Dict[str, Any]:
    hosts: Dict[str, Any] = {}
    if sim.platform is None:
        return hosts
    for name in sorted(sim.platform.hosts):
        host = sim.platform.hosts[name]
        entry: Dict[str, Any] = {
            "up": bool(host.up),
            "cpu_speed": host.cpu.speed,
            "channels": [
                {
                    "bandwidth": channel.bandwidth,
                    "flows": [
                        [flow.label, flow.amount, flow.remaining,
                         flow.start_time]
                        for flow in channel._flows
                    ],
                }
                for channel in host.channels()
            ],
        }
        manager = host.memory_manager
        if manager is not None:
            entry["cache"] = _capture_cache(manager)
        hosts[name] = entry
    return hosts


def _capture_cache(manager) -> Dict[str, Any]:
    return {
        "free": manager._free,
        "anonymous": manager._anonymous,
        "anonymous_by_owner": dict(sorted(
            manager._anonymous_by_owner.items()
        )),
        "stats": manager.stats.as_dict(),
        "lists": {
            "inactive": _capture_lru(manager.lists.inactive),
            "active": _capture_lru(manager.lists.active),
        },
    }


def _capture_lru(lru) -> Dict[str, Any]:
    """One LRU list: extent runs in list order, fragments with their keys."""
    return {
        "size": lru.size,
        "dirty": lru.dirty_size,
        "merges": lru.merges,
        "runs": [
            {
                "file": run.filename,
                "dirty": bool(run.dirty),
                "fragments": [
                    [block.size, block.entry_time, block.last_access,
                     block._stamp]
                    for block in run.fragments()
                ],
            }
            for run in lru.runs()
        ],
    }


def _capture_scheduler(scheduler) -> Dict[str, Any]:
    data = _capture_scheduler_base(scheduler)
    if scheduler.streaming:
        # Streaming-only keys are added conditionally so batch-mode
        # fingerprints (and the pinned parity goldens) stay byte-identical.
        data["stream"] = {
            "closed": bool(scheduler._stream_closed),
            "pending": sorted(
                job_id for _, job_id, _ in scheduler._stream_arrivals
            ),
        }
    return data


def _capture_scheduler_base(scheduler) -> Dict[str, Any]:
    return {
        "queue": [job.id for job in scheduler.queue],
        "jobs": {
            str(job.id): _capture_job(job)
            for job in scheduler.jobs
        },
        "nodes": [
            {
                "name": node.name,
                "up": bool(node.up),
                "free_cores": node.free_cores,
                "running": sorted(node.running),
                "draining": bool(node.draining),
                "left": bool(node.left),
                "n_failures": node.n_failures,
            }
            for node in scheduler.nodes
        ],
        "suspending": sorted(scheduler._suspending),
        "crashed": sorted(scheduler._crashed),
        "n_node_failures": scheduler.n_node_failures,
        "n_job_restarts": scheduler.n_job_restarts,
        "records_digest": fingerprint(scheduler.records),
        "n_records": len(scheduler.records),
        "executors": [
            _capture_executor(executor) for executor in scheduler.executors
        ],
    }


def _capture_job(job) -> Dict[str, Any]:
    return {
        "label": job.label,
        "cores": job.cores,
        "priority": job.priority,
        "arrival_time": job.arrival_time,
        "node": job.node_name,
        "start_time": job.start_time,
        "end_time": job.end_time,
        "run_seconds": job.run_seconds,
        "preemptions": job.preemptions,
        "restarts": job.restarts,
        "pinned_node": job.pinned_node,
    }


def _capture_executor(executor) -> Dict[str, Any]:
    """One workflow executor's preemption checkpoint."""
    return {
        "label": executor.label,
        "host": executor.host.name,
        "completed": sorted(executor._completed),
        "compute_done": dict(sorted(executor._compute_done.items())),
        "pending": (
            sorted(executor._pending) if executor._pending is not None
            else None
        ),
        "running": sorted(executor._running),
        "suspended": bool(executor._suspended),
        "start_time": executor.start_time,
        "end_time": executor.end_time,
        "lost_compute_seconds": executor.lost_compute_seconds,
    }


def _capture_tracer(tracer) -> Dict[str, Any]:
    return {
        "n_operations": len(tracer.operations),
        "operations_digest": fingerprint(
            [record.as_dict() for record in tracer.operations]
        ),
        "n_memory_samples": len(tracer.memory_trace),
        "memory_digest": fingerprint(tracer.memory_trace),
        "n_cache_records": len(tracer.cache_contents),
        "cache_records_digest": fingerprint(tracer.cache_contents),
    }


def _capture_faults(injector) -> Dict[str, Any]:
    return {
        "slowed": sorted(injector._slowed),
        "rngs": [
            [key, rng.seed, rng.n_draws, rng.state_digest()]
            for key, rng in sorted(injector.rngs.items())
        ],
    }
