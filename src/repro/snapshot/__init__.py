"""Checkpoint/restore of full simulator state.

Deterministic snapshots of a live simulation (``write_snapshot`` /
``restore_simulation``), checkpoint-interval planning (``SnapshotPlan``
with Young- and Daly-optimal intervals tuned against a fault plan's
MTBF), and crash-recoverable execution (``run_checkpointed`` /
``resume_checkpointed``).  The invariant throughout: a run snapshotted at
``t=T`` and restored produces byte-identical results to the uninterrupted
run.
"""

from repro.snapshot.canonical import (
    NONDETERMINISTIC_FIELDS,
    canonical_json,
    fingerprint,
    to_jsonable,
)
from repro.snapshot.capture import capture_state
from repro.snapshot.plan import (
    SnapshotPlan,
    daly_interval,
    effective_mtbf,
    young_interval,
)
from repro.snapshot.recipe import (
    BUILDERS,
    FINISHERS,
    SimRecipe,
    build_from_recipe,
    finish_point,
)
from repro.snapshot.run import (
    LIVE_OVERRIDES,
    SNAPSHOT_PREFIX,
    apply_live_overrides,
    latest_snapshot,
    restore_simulation,
    resume_checkpointed,
    run_checkpointed,
    snapshot_path,
    warm_start_values,
    write_snapshot,
)
from repro.snapshot.store import (
    FORMAT,
    VERSION,
    read_snapshot_doc,
    write_snapshot_doc,
)

__all__ = [
    "BUILDERS",
    "FINISHERS",
    "FORMAT",
    "LIVE_OVERRIDES",
    "NONDETERMINISTIC_FIELDS",
    "SNAPSHOT_PREFIX",
    "SimRecipe",
    "SnapshotPlan",
    "VERSION",
    "apply_live_overrides",
    "build_from_recipe",
    "canonical_json",
    "capture_state",
    "daly_interval",
    "effective_mtbf",
    "fingerprint",
    "finish_point",
    "latest_snapshot",
    "read_snapshot_doc",
    "restore_simulation",
    "resume_checkpointed",
    "run_checkpointed",
    "snapshot_path",
    "to_jsonable",
    "warm_start_values",
    "write_snapshot",
    "write_snapshot_doc",
    "young_interval",
]
