"""Snapshot files: versioned header, canonical bytes, atomic writes.

A snapshot file is a single canonical-JSON document::

    {
      "format": "repro-snapshot",
      "version": 1,
      "t": <simulated seconds>,
      "experiment": "exp6",
      "params": {...},              # JSON-encoded build recipe parameters
      "fingerprint": "<sha256>",    # of the captured state
      "state": {...}                # the capture itself (see capture.py)
    }

Two properties matter:

* **Byte determinism** — the document is written with the canonical
  encoder (sorted keys, compact separators), so snapshotting the same
  simulation state twice produces byte-identical files.  No wall-clock
  content is ever stored.
* **Atomicity** — files are written to a temporary sibling, fsynced and
  ``os.replace``'d into place, so a crash mid-write can never leave a
  truncated snapshot where a resumable one used to be.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import SnapshotError
from repro.snapshot.canonical import canonical_json

#: Magic format tag; a file without it is not a snapshot at all.
FORMAT = "repro-snapshot"
#: File-format version; readers reject snapshots from other versions.
VERSION = 1


def write_snapshot_doc(doc: Dict[str, Any],
                       path: Union[str, Path]) -> Path:
    """Atomically write ``doc`` as canonical JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = canonical_json(doc).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise SnapshotError(f"could not write snapshot {path}: {exc}") from exc
    return path


def read_snapshot_doc(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a snapshot document written by this module."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"could not read snapshot {path}: {exc}") from exc
    except ValueError as exc:
        raise SnapshotError(
            f"snapshot {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != FORMAT:
        raise SnapshotError(f"{path} is not a {FORMAT} file")
    version = doc.get("version")
    if version != VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {version!r}; "
            f"this build reads version {VERSION}"
        )
    for key in ("t", "experiment", "params", "fingerprint", "state"):
        if key not in doc:
            raise SnapshotError(f"snapshot {path} is missing field {key!r}")
    return doc
