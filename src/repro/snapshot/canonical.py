"""Canonical JSON encoding and state fingerprints.

Snapshot files and the parity gates both need one property above all
others: *the same simulation state must always produce the same bytes*.
This module provides the deterministic encoder behind that guarantee —
sorted keys, no whitespace, recursive normalization of dataclasses and
``as_dict`` objects, explicit encoding of non-finite floats (strict JSON
has none), and exclusion of the fields that are legitimately
nondeterministic (wall-clock timings, process ids, the telemetry observer
object).

Python's ``repr`` of a float is itself deterministic (shortest round-trip
representation, identical across platforms for IEEE-754 doubles), so
``json.dumps`` of normalized data is byte-stable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, FrozenSet

#: Fields that may differ between two otherwise identical runs and are
#: therefore excluded from canonical encodings: in-worker wall-clock time,
#: worker process ids, and the (unserializable) telemetry observer.
NONDETERMINISTIC_FIELDS: FrozenSet[str] = frozenset(
    {"wallclock_time", "pid", "observer"}
)


def to_jsonable(value: Any,
                exclude: FrozenSet[str] = NONDETERMINISTIC_FIELDS) -> Any:
    """Normalize ``value`` into plain JSON-able data, deterministically.

    Dict keys are stringified (non-string keys via ``repr``) and mapping
    entries named in ``exclude`` are dropped at every nesting level.
    Dataclasses and objects exposing ``as_dict()`` are expanded; sets are
    sorted; non-finite floats become ``{"__nonfinite__": ...}`` markers so
    the output stays strict JSON.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {"__nonfinite__": repr(value)}
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            name = key if isinstance(key, str) else repr(key)
            if name in exclude:
                continue
            out[name] = to_jsonable(item, exclude)
        return out
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, exclude) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item, exclude) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field in dataclasses.fields(value):
            if field.name in exclude:
                continue
            out[field.name] = to_jsonable(getattr(value, field.name), exclude)
        return out
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return to_jsonable(as_dict(), exclude)
    return repr(value)


def canonical_json(value: Any,
                   exclude: FrozenSet[str] = NONDETERMINISTIC_FIELDS) -> str:
    """The canonical (sorted, compact, strict) JSON encoding of ``value``."""
    return json.dumps(to_jsonable(value, exclude), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def fingerprint(value: Any,
                exclude: FrozenSet[str] = NONDETERMINISTIC_FIELDS) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    return hashlib.sha256(
        canonical_json(value, exclude).encode("utf-8")
    ).hexdigest()
