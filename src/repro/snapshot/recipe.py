"""Build recipes: how a snapshot rebuilds the simulation it came from.

A live :class:`~repro.simulator.simulation.Simulation` is full of paused
generators and cannot be pickled.  What *can* be stored is the recipe that
built it — the experiment name plus its keyword parameters — because every
experiment here is deterministic: the same recipe always produces the same
simulation, event for event.  A snapshot therefore stores ``(recipe, t,
state fingerprint)`` and a restore re-runs the recipe to ``t`` and checks
the fingerprint.

Experiments participate by splitting their ``run_expN`` entry point into a
builder (returns a recipe-bound, unstarted ``Simulation``) and a finisher
(turns the ``SimulationResult`` into the experiment's point dataclass),
both registered below as lazy ``"module:attr"`` strings — importing this
module pulls in no experiment code.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import SnapshotError
from repro.faults.plan import FaultPlan

#: experiment name -> "module:attr" of a ``build_*(**params) -> Simulation``.
BUILDERS: Dict[str, str] = {
    "exp2": "repro.experiments.exp2_concurrent:build_exp2",
    "exp6": "repro.experiments.exp6_cluster:build_exp6",
    "exp7": "repro.experiments.exp7_trace_replay:build_exp7",
    "service-cluster": "repro.service.base:build_service_cluster",
}

#: experiment name -> "module:attr" of a ``finish_*(result, **params)``.
FINISHERS: Dict[str, str] = {
    "exp2": "repro.experiments.exp2_concurrent:finish_exp2",
    "exp6": "repro.experiments.exp6_cluster:finish_exp6",
    "exp7": "repro.experiments.exp7_trace_replay:finish_exp7",
    "service-cluster": "repro.service.base:finish_service_cluster",
}


def _resolve(registry: Dict[str, str], experiment: str):
    try:
        target = registry[experiment]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise SnapshotError(
            f"no snapshot builder registered for experiment {experiment!r} "
            f"(known: {known})"
        ) from None
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


# ------------------------------------------------------------------ params
def encode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-encode recipe parameters (fault plans get a marker wrapper)."""
    encoded: Dict[str, Any] = {}
    for key, value in params.items():
        if isinstance(value, FaultPlan):
            encoded[key] = {"__fault_plan__": value.as_dict()}
        else:
            encoded[key] = value
    return encoded


def decode_params(data: Dict[str, Any]) -> Dict[str, Any]:
    """Invert :func:`encode_params`."""
    decoded: Dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, dict) and "__fault_plan__" in value:
            decoded[key] = FaultPlan.from_dict(value["__fault_plan__"])
        else:
            decoded[key] = value
    return decoded


@dataclass(frozen=True)
class SimRecipe:
    """An experiment name plus the keyword parameters that build it."""

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)

    def encoded(self) -> Dict[str, Any]:
        """The JSON-able ``{"experiment", "params"}`` form."""
        return {"experiment": self.experiment,
                "params": encode_params(self.params)}

    @classmethod
    def decode(cls, doc: Dict[str, Any]) -> "SimRecipe":
        """Rebuild a recipe from a snapshot document (or its subset)."""
        return cls(experiment=doc["experiment"],
                   params=decode_params(doc["params"]))


def build_from_recipe(recipe: SimRecipe):
    """Build a fresh, unstarted simulation from ``recipe``.

    The builder binds the recipe to the simulation itself; this function
    only double-checks that it did (an unbound simulation could not be
    snapshotted again after a resume).
    """
    builder = _resolve(BUILDERS, recipe.experiment)
    sim = builder(**recipe.params)
    if sim.recipe is None:
        sim.bind_recipe(recipe)
    return sim


def finish_point(recipe: SimRecipe, result):
    """Turn a finished ``SimulationResult`` into the experiment's point."""
    finisher = _resolve(FINISHERS, recipe.experiment)
    return finisher(result, **recipe.params)
