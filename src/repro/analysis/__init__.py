"""Analysis utilities: regressions and plain-text tables/reports."""

from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.tables import format_table

__all__ = ["LinearFit", "linear_fit", "format_table"]
