"""Plain-text table formatting for experiment reports.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output aligned and readable without pulling in any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *,
                 precision: int = 2, title: Optional[str] = None) -> str:
    """Render ``rows`` as an aligned plain-text table.

    Floats are rounded to ``precision`` decimal places; all other values use
    ``str``.  Returns the table as a single string (no trailing newline).
    """
    formatted_rows: List[List[str]] = [
        [_format_cell(value, precision) for value in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in formatted_rows:
        if len(row) != len(widths):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(widths)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Sequence[object]], *,
                  headers: Sequence[str], precision: int = 2) -> str:
    """Render one labelled data series (a curve of a figure) as text."""
    return format_table(headers, points, precision=precision, title=name)
