"""Linear regression (Figure 8 fits).

A tiny ordinary-least-squares implementation with the statistics the paper
reports: slope, intercept, coefficient of determination and the p-value of
the slope (two-sided t-test against a zero slope).  SciPy is used for the
p-value when available; otherwise a normal approximation is applied so the
package keeps working with NumPy alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    p_value: float
    n: int

    def predict(self, x: float) -> float:
        """Predicted value at ``x``."""
        return self.slope * x + self.intercept

    def equation(self, precision: int = 2) -> str:
        """Human-readable equation, like the annotations of Figure 8."""
        sign = "+" if self.intercept >= 0 else "-"
        return (
            f"y={self.slope:.{precision}f}x{sign}{abs(self.intercept):.{precision}f}"
        )


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y = a x + b`` by ordinary least squares.

    Raises
    ------
    ValueError
        If fewer than two points are given or all ``x`` are identical.
    """
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.size != ys.size:
        raise ValueError(f"length mismatch: {xs.size} x values vs {ys.size} y values")
    if xs.size < 2:
        raise ValueError("at least two points are required for a linear fit")
    if np.allclose(xs, xs[0]):
        raise ValueError("all x values are identical; the slope is undefined")

    n = xs.size
    x_mean = xs.mean()
    y_mean = ys.mean()
    sxx = float(((xs - x_mean) ** 2).sum())
    sxy = float(((xs - x_mean) * (ys - y_mean)).sum())
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    predicted = slope * xs + intercept
    ss_res = float(((ys - predicted) ** 2).sum())
    ss_tot = float(((ys - y_mean) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    p_value = _slope_p_value(n, slope, sxx, ss_res)
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared,
                     p_value=p_value, n=int(n))


def _slope_p_value(n: int, slope: float, sxx: float, ss_res: float) -> float:
    """Two-sided p-value of the slope against the null hypothesis slope=0."""
    dof = n - 2
    if dof <= 0:
        return float("nan")
    if ss_res <= 0:
        return 0.0 if slope != 0 else 1.0
    stderr = math.sqrt(ss_res / dof / sxx)
    if stderr == 0:
        return 0.0
    t_stat = abs(slope / stderr)
    try:
        from scipy import stats

        return float(2.0 * stats.t.sf(t_stat, dof))
    except Exception:  # pragma: no cover - scipy always present in CI
        # Normal approximation of the t distribution.
        return float(2.0 * (1.0 - _normal_cdf(t_stat)))


def _normal_cdf(value: float) -> float:
    return 0.5 * (1.0 + math.erf(value / math.sqrt(2.0)))
